(** The fading parameter (Definition 3.1) and Theorem 2's bound.

    [gamma_z(r) = r * max over r-separated X of sum_{x in X} 1/f(x,z)]
    measures the worst normalized interference node [z] can receive from
    uniform-power senders that are mutually (and from [z]) at decay at least
    [r].  The fading parameter of the space is [gamma(r) = max_z gamma_z(r)].
    Distributed algorithms transfer to a decay space at a time cost governed
    by this parameter (§3); Theorem 2 bounds it on doubling spaces by
    [C * 2^(A+1) * (zetahat(2 - A) - 1)] where [zetahat] is the Riemann zeta
    function and [A < 1] the Assouad dimension. *)

val is_separated : Decay_space.t -> r:float -> int list -> bool
(** Whether all pairwise decays (both directions) of the given nodes are at
    least [r]. *)

val weighted_mis :
  weights:float array -> compat:(int -> int -> bool) -> float * int list
(** Maximum-weight independent set of the compatibility graph: exact
    branch and bound with a remaining-weight bound and a 2M-node budget
    falling back to the greedy incumbent.  Exposed for the estimator tier
    ({!Estimators.gamma}), which runs the same search over oracle-backed
    candidate sets. *)

val gamma_z :
  ?exact_limit:int -> Decay_space.t -> z:int -> r:float -> float * int list
(** The fading value of node [z] at separation [r], together with the
    witnessing separated sender set.  Maximizing over separated subsets is a
    weighted independent-set problem; solved exactly by branch and bound for
    small candidate sets (default limit 24, with the compatibility relation
    tabulated into a dense byte table first), by greedy + swap local search
    otherwise (then a lower bound). *)

val gamma : ?ctx:Ctx.t -> Decay_space.t -> r:float -> float
(** The fading parameter [max_z gamma_z(r)].  [ctx] (default
    {!Ctx.default}) carries the job count for the listener sweep (the
    result is identical at every job count), the cache flag (memoized
    under [(digest, r, exact_limit)]) and the branch-and-bound
    [exact_limit] forwarded to {!gamma_z}. *)

val gamma_with :
  ?exact_limit:int -> ?jobs:int -> ?cache:bool -> Decay_space.t -> r:float ->
  float
[@@ocaml.deprecated "Use Fading.gamma ?ctx instead."]
(** Deprecated compat wrapper over {!gamma} preserving the historical
    optional-argument signature. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of the gamma cache. *)

val clear_caches : unit -> unit
(** Drop all cached gamma results and zero the hit/miss counters. *)

val theorem2_bound : c:float -> a:float -> float
(** Theorem 2's closed form [C * 2^(A+1) * (zetahat(2-A) - 1)]; requires
    [a < 1]. *)

val interference_at :
  Decay_space.t -> z:int -> senders:int list -> power:float -> float
(** Total received power [sum_x power / f(x,z)] — the quantity
    [I_S(z)] of the annulus argument. *)
