(** Service-level objectives for the serving stack: latency and error
    targets tracked over a sliding window, with burn-rate computation.

    An objective is either a latency quantile bound ("p99 <= 50ms",
    meaning at most 1% of requests may be slower than 50ms) or an error
    -rate bound ("err <= 1%").  Both reduce to a {e bad-event budget}: a
    fraction of requests allowed to violate the target.  The burn rate
    is the observed bad fraction divided by the budget — 1.0 means the
    budget is being consumed exactly as fast as allowed, above 1.0 the
    objective is being violated.

    One grammar everywhere: [bg serve --slo], [bg loadgen --slo],
    [bg slo --spec] all parse the same comma-separated spec, e.g.
    ["p99<=0.05,err<=0.01"].  Keys: [pNN] (a latency quantile, value in
    seconds; [p999] reads as 0.999) and [err] (error rate, value as a
    fraction or with a [%] suffix).  [<] and [<=] are synonyms.

    The tracker ({!t}) is what a live server threads its responses
    through; {!eval_samples} scores a finished loadgen run;
    {!bad_latency_of_buckets} scores recorded telemetry (log2-bucket
    resolution: a bucket straddling the threshold counts as good). *)

type objective =
  | Latency of { quantile : float; threshold_s : float }
      (** at most [1 - quantile] of requests may exceed [threshold_s] *)
  | Error_rate of float  (** at most this fraction of requests may fail *)

type spec = objective list

val objective_name : objective -> string
(** ["p99<=0.05"] / ["err<=0.01"] — re-parseable by {!parse_spec}. *)

val parse_spec : string -> (spec, string) result
(** Parse a comma-separated spec; [Error] carries a one-line reason.
    The empty string is an error (an SLO with no objectives is a
    mistake, not a vacuous pass). *)

val spec_to_string : spec -> string

type status = {
  objective : objective;
  window_total : int;  (** events in the sliding window *)
  window_bad : int;
  window_burn : float;  (** bad fraction / budget; 0 on empty window *)
  lifetime_total : int;
  lifetime_bad : int;
  lifetime_burn : float;
  healthy : bool;  (** [window_burn <= 1.] *)
}

type t

val create : ?window_s:float -> spec -> t
(** Sliding window defaults to 60 seconds. *)

val window_s : t -> float
val spec : t -> spec

val record : t -> now_s:float -> latency_s:float -> ok:bool -> unit
(** Feed one finished request.  [ok = false] (a failed or rejected
    answer) counts against error-rate objectives and is also bad for
    every latency objective. *)

val report : t -> now_s:float -> status list
(** Evict events older than the window, then score every objective. *)

val violated : status list -> bool
(** Any objective with [healthy = false]. *)

val eval_samples : spec -> (float * bool) list -> status list
(** Score a finished run: each sample is [(latency_s, ok)].  Window and
    lifetime coincide. *)

val bad_latency_of_buckets :
  threshold_s:float -> (int * int) list -> int
(** How many observations in a sparse log2-bucket histogram (as recorded
    by telemetry snapshots) exceed the threshold: the count of buckets
    strictly above the threshold's own bucket.  Bucket-resolution
    approximation — observations sharing the threshold's bucket count as
    good. *)

val status_to_json : status -> Obs_tools.Jsonl.t
(** [{"objective":"p99<=0.05","window":{"total":N,"bad":N,"burn":F},
    "lifetime":{...},"healthy":B}] *)
