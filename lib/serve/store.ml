(* The persistent cross-restart result store.

   In memory this is exactly one Bg_prelude.Memo table (so the serve
   store and the in-process analysis caches share a single bound-and-
   evict policy: max-entries cap, per-entry LRU eviction, hit/miss/
   eviction counters mirrored into the Obs registry under memo.store).
   On disk it is two files:

     PATH       the JSONL snapshot — one {"key":K,"result":V} line per
                entry, least recently used first — written atomically
                through Decay_io.with_atomic_out, so a crash mid-flush
                can never clobber the previous snapshot with a torn one.
     PATH.wal   an append-only write-ahead journal of entries added
                since the last snapshot.  Each record carries an md5
                over its key and serialized result, appended with a
                single write(2); [sync] fsyncs the journal (the server
                calls it once per batch — group commit), so a SIGKILL at
                any point loses at most the batch in flight.

   Opening replays the snapshot, then the longest valid prefix of the
   journal: recovery stops at the first line that fails to parse or
   whose checksum mismatches (a torn final append), counting the
   discarded tail.  A torn journal therefore costs the un-synced tail,
   never a crashed daemon and never a corrupt entry served to a client.

   Compaction is snapshot-then-truncate: [flush] writes the full table
   atomically and only then truncates the journal to zero.  A crash
   between the two replays journal entries that are already in the
   snapshot — Memo.set is idempotent, so that is merely redundant.

   Loading stays corruption-tolerant by construction: snapshot lines
   that fail to parse are counted and skipped (a damaged entry costs one
   recompute); journal damage truncates to the valid prefix. *)

module J = Obs_tools.Jsonl
module Memo = Core.Prelude.Memo
module Obs = Core.Prelude.Obs

type t = {
  memo : (string, J.t) Memo.t;
  path : string option;
  flush_every : int;
  chaos : Chaos.t option;
  lock : Mutex.t; (* guards [dirty], [wal_fd] and serializes flushes *)
  mutable dirty : int;
  mutable wal_fd : Unix.file_descr option;
  mutable wal_unsynced : int; (* appends since the last fsync *)
  loaded : int;
  corrupt : int;
  wal_recovered : int;
  wal_torn : int;
}

let c_corrupt = Obs.counter "store.corrupt_dropped"
let c_loaded = Obs.counter "store.loaded"
let c_flushes = Obs.counter "store.flushes"
let c_wal_appends = Obs.counter "store.wal_appends"
let c_wal_syncs = Obs.counter "store.wal_syncs"
let c_wal_recovered = Obs.counter "store.wal_recovered"
let c_wal_torn = Obs.counter "store.wal_torn"

let header = J.Obj [ ("type", J.Str "bg-serve-store"); ("version", J.Num 1.) ]
let wal_path p = p ^ ".wal"

let checksum key result =
  Digest.to_hex (Digest.string (key ^ "\x00" ^ J.to_string result))

let wal_record key result =
  J.to_string
    (J.Obj
       [ ("key", J.Str key); ("result", result);
         ("md5", J.Str (checksum key result)) ])
  ^ "\n"

(* Read a snapshot leniently: unreadable file -> empty store; bad line ->
   skip and count.  Returns entries in file order (LRU order). *)
let read_snapshot path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> ([], 0)
  | text ->
      let entries = ref [] and corrupt = ref 0 in
      String.split_on_char '\n' text
      |> List.iter (fun line ->
             let line = String.trim line in
             if line <> "" then
               match J.parse line with
               | exception J.Bad _ -> incr corrupt
               | j -> (
                   match (J.mem_str "type" j, J.mem_str "key" j,
                          J.member "result" j) with
                   | Some "bg-serve-store", _, _ -> () (* header line *)
                   | _, Some key, Some result ->
                       entries := (key, result) :: !entries
                   | _ -> incr corrupt));
      (List.rev !entries, !corrupt)

(* Replay the journal's longest valid prefix.  Unlike the snapshot
   reader this is strict: the first line that fails to parse, lacks a
   field, or fails its checksum ends recovery — everything after it is
   the torn tail of a crashed append and is discarded (counted). *)
let read_wal path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> ([], 0)
  | text ->
      let lines = String.split_on_char '\n' text in
      let rec go acc torn = function
        | [] -> (List.rev acc, torn)
        | line :: rest ->
            if String.trim line = "" then go acc torn rest
            else
              let entry =
                match J.parse line with
                | exception J.Bad _ -> None
                | j -> (
                    match (J.mem_str "key" j, J.member "result" j,
                           J.mem_str "md5" j) with
                    | Some key, Some result, Some md5
                      when String.equal md5 (checksum key result) ->
                        Some (key, result)
                    | _ -> None)
              in
              (match entry with
              | Some e -> go (e :: acc) torn rest
              | None ->
                  (* torn tail: count this and every remaining payload *)
                  let remaining =
                    List.length
                      (List.filter (fun l -> String.trim l <> "") rest)
                  in
                  (List.rev acc, torn + 1 + remaining))
      in
      go [] 0 lines

let open_ ?(max_entries = 4096) ?(flush_every = 256) ?path ?(wal = true)
    ?chaos () =
  if flush_every < 1 then
    invalid_arg "Store.open_: flush_every must be positive";
  let memo = Memo.create ~max_size:max_entries ~name:"store" () in
  let loaded, corrupt, wal_recovered, wal_torn =
    match path with
    | None -> (0, 0, 0, 0)
    | Some p ->
        let entries, corrupt = read_snapshot p in
        List.iter (fun (k, v) -> Memo.set memo k v) entries;
        let recovered, torn =
          if wal then begin
            let wentries, torn = read_wal (wal_path p) in
            List.iter (fun (k, v) -> Memo.set memo k v) wentries;
            (List.length wentries, torn)
          end
          else (0, 0)
        in
        (List.length entries, corrupt, recovered, torn)
  in
  let wal_fd =
    match path with
    | Some p when wal ->
        Some
          (Unix.openfile (wal_path p)
             [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT; Unix.O_CLOEXEC ]
             0o644)
    | _ -> None
  in
  Obs.add c_loaded loaded;
  Obs.add c_corrupt corrupt;
  Obs.add c_wal_recovered wal_recovered;
  Obs.add c_wal_torn wal_torn;
  { memo; path; flush_every; chaos; lock = Mutex.create (); dirty = 0;
    wal_fd; wal_unsynced = 0; loaded; corrupt; wal_recovered; wal_torn }

let find t key = Memo.find_opt t.memo key

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let flush t =
  match t.path with
  | None -> ()
  | Some path ->
      locked t (fun () ->
          Chaos.maybe_at t.chaos Chaos.Pre_snapshot;
          Core.Decay.Decay_io.with_atomic_out path (fun oc ->
              output_string oc (J.to_string header);
              output_char oc '\n';
              Chaos.maybe_at t.chaos Chaos.Mid_snapshot;
              List.iter
                (fun (key, result) ->
                  output_string oc
                    (J.to_string
                       (J.Obj [ ("key", J.Str key); ("result", result) ]));
                  output_char oc '\n')
                (Memo.to_alist t.memo));
          (* The snapshot is durably in place (atomic rename); the
             journal's contents are now redundant.  Truncate-and-fsync —
             a crash between rename and truncate only replays entries
             the snapshot already holds. *)
          (match t.wal_fd with
          | Some fd ->
              Unix.ftruncate fd 0;
              Unix.fsync fd;
              t.wal_unsynced <- 0
          | None -> ());
          t.dirty <- 0;
          Obs.incr c_flushes)

let add t key v =
  Memo.set t.memo key v;
  let need_flush =
    locked t (fun () ->
        (match t.wal_fd with
        | Some fd ->
            let rec_ = Bytes.of_string (wal_record key v) in
            let n = Unix.write fd rec_ 0 (Bytes.length rec_) in
            ignore n;
            t.wal_unsynced <- t.wal_unsynced + 1;
            Obs.incr c_wal_appends
        | None -> ());
        t.dirty <- t.dirty + 1;
        t.dirty >= t.flush_every && t.path <> None)
  in
  if need_flush then flush t

(* Group commit: fsync the journal once per server batch rather than per
   append, keeping the WAL off the per-request critical path. *)
let sync t =
  locked t (fun () ->
      match t.wal_fd with
      | Some fd when t.wal_unsynced > 0 ->
          Unix.fsync fd;
          t.wal_unsynced <- 0;
          Obs.incr c_wal_syncs
      | _ -> ())

let close t =
  flush t;
  locked t (fun () ->
      match t.wal_fd with
      | Some fd ->
          t.wal_fd <- None;
          (try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ())

let length t = Memo.length t.memo
let hits t = Memo.hits t.memo
let misses t = Memo.misses t.memo
let evictions t = Memo.evictions t.memo
let loaded t = t.loaded
let corrupt_dropped t = t.corrupt
let wal_recovered t = t.wal_recovered
let wal_torn t = t.wal_torn
let path t = t.path
