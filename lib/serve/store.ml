(* The persistent cross-restart result store.

   In memory this is exactly one Bg_prelude.Memo table (so the serve
   store and the in-process analysis caches share a single bound-and-
   evict policy: max-entries cap, per-entry LRU eviction, hit/miss/
   eviction counters mirrored into the Obs registry under memo.store).
   On disk it is a JSONL snapshot — one {"key":K,"result":V} line per
   entry, least recently used first — written atomically through
   Decay_io.with_atomic_out, so a crash mid-flush can never clobber the
   previous snapshot with a torn one.

   Loading is corruption-tolerant by construction: the snapshot is
   advisory cache state, so a line that fails to parse, or parses to
   something without the expected fields, is counted and skipped — a
   damaged entry costs one recompute, never a crashed daemon.  Entries
   are replayed through Memo.set in file order, which reproduces the
   LRU recency the snapshot was written in. *)

module J = Obs_tools.Jsonl
module Memo = Core.Prelude.Memo
module Obs = Core.Prelude.Obs

type t = {
  memo : (string, J.t) Memo.t;
  path : string option;
  flush_every : int;
  lock : Mutex.t; (* guards [dirty] and serializes flushes *)
  mutable dirty : int;
  loaded : int;
  corrupt : int;
}

let c_corrupt = Obs.counter "store.corrupt_dropped"
let c_loaded = Obs.counter "store.loaded"
let c_flushes = Obs.counter "store.flushes"

let header = J.Obj [ ("type", J.Str "bg-serve-store"); ("version", J.Num 1.) ]

(* Read a snapshot leniently: unreadable file -> empty store; bad line ->
   skip and count.  Returns entries in file order (LRU order). *)
let read_snapshot path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> ([], 0)
  | text ->
      let entries = ref [] and corrupt = ref 0 in
      String.split_on_char '\n' text
      |> List.iter (fun line ->
             let line = String.trim line in
             if line <> "" then
               match J.parse line with
               | exception J.Bad _ -> incr corrupt
               | j -> (
                   match (J.mem_str "type" j, J.mem_str "key" j,
                          J.member "result" j) with
                   | Some "bg-serve-store", _, _ -> () (* header line *)
                   | _, Some key, Some result ->
                       entries := (key, result) :: !entries
                   | _ -> incr corrupt));
      (List.rev !entries, !corrupt)

let open_ ?(max_entries = 4096) ?(flush_every = 256) ?path () =
  if flush_every < 1 then
    invalid_arg "Store.open_: flush_every must be positive";
  let memo = Memo.create ~max_size:max_entries ~name:"store" () in
  let loaded, corrupt =
    match path with
    | None -> (0, 0)
    | Some p ->
        let entries, corrupt = read_snapshot p in
        List.iter (fun (k, v) -> Memo.set memo k v) entries;
        (List.length entries, corrupt)
  in
  Obs.add c_loaded loaded;
  Obs.add c_corrupt corrupt;
  { memo; path; flush_every; lock = Mutex.create (); dirty = 0; loaded;
    corrupt }

let find t key = Memo.find_opt t.memo key

let flush t =
  match t.path with
  | None -> ()
  | Some path ->
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          Core.Decay.Decay_io.with_atomic_out path (fun oc ->
              output_string oc (J.to_string header);
              output_char oc '\n';
              List.iter
                (fun (key, result) ->
                  output_string oc
                    (J.to_string
                       (J.Obj [ ("key", J.Str key); ("result", result) ]));
                  output_char oc '\n')
                (Memo.to_alist t.memo));
          t.dirty <- 0;
          Obs.incr c_flushes)

let add t key v =
  Memo.set t.memo key v;
  let need_flush =
    Mutex.lock t.lock;
    t.dirty <- t.dirty + 1;
    let f = t.dirty >= t.flush_every && t.path <> None in
    Mutex.unlock t.lock;
    f
  in
  if need_flush then flush t

let length t = Memo.length t.memo
let hits t = Memo.hits t.memo
let misses t = Memo.misses t.memo
let evictions t = Memo.evictions t.memo
let loaded t = t.loaded
let corrupt_dropped t = t.corrupt
let path t = t.path
