(** The batched analysis engine behind [bg serve].

    Requests pass through a bounded admission queue (overload is
    answered immediately with a typed [rejected] response — the queue
    never grows without bound), are taken in batches, keyed by space
    digest + op parameters so concurrent duplicates coalesce onto one
    computation, checked against the shared {!Store}, and the remaining
    unique keys computed in parallel on the shared domain pool.  A
    compute exception becomes a typed [error] response for that request
    alone — one poisoned request cannot take down its batch or the
    daemon.

    Every request gets one [serve.request] span (queue-wait, batch id
    and cache outcome as attrs) and lands in the [serve.latency_s] /
    [serve.queue_wait_s] histograms; admission and batch counters are
    [serve.*] in the {!Bg_prelude.Obs} registry. *)

type config = {
  ctx : Core.Decay.Ctx.t;  (** analysis context shared by all requests *)
  batch_size : int;  (** max requests taken per batch (default 32) *)
  max_queue : int;
      (** admission bound; arrivals beyond it are rejected (default 256) *)
  request_timeout_s : float option;
      (** per-compute wall-clock budget; overruns answer [error] *)
  store : Store.t option;  (** shared (optionally persistent) result cache *)
}

val default_config : config

type stats = {
  mutable accepted : int;
  mutable rejected : int;  (** shed by admission control *)
  mutable failed : int;  (** parse errors + compute errors *)
  mutable served : int;  (** [ok] responses *)
  mutable computed : int;  (** cache misses actually computed *)
  mutable store_hits : int;
  mutable coalesced : int;  (** duplicates folded into a batch-mate *)
  mutable batches : int;
  mutable peak_queue : int;  (** high-water mark; [<= max_queue] always *)
}

type t

val create : config -> t
(** @raise Invalid_argument if [batch_size < 1] or [max_queue < 1]. *)

val stats : t -> stats

val process_batch :
  t -> (Protocol.request * float) list -> Protocol.response list
(** Serve one batch of [(request, admission_time)] pairs (admission
    times from {!Bg_prelude.Obs.now_s}); responses come back in input
    order.  Exposed for tests and in-process drivers — the daemon loops
    call it internally. *)

type input =
  [ `Req of string * (string -> unit)
    (** a request line plus the reply function for its response line *)
  | `Nothing  (** nothing available right now (only when not blocking) *)
  | `Eof ]

type io = {
  read : block:bool -> input;
      (** [block:true] may wait for input; [block:false] must poll *)
  flush : unit -> unit;  (** called after each batch's replies *)
}

(** A nonblocking-capable line reader over a raw fd (select + internal
    buffer) — the daemons' input stage, reused by {!Loadgen}'s pipe
    driver for the response stream. *)
module Line_reader : sig
  type t

  val create : Unix.file_descr -> t

  val read_chunk : t -> unit
  (** Pull whatever bytes are ready (never blocks a nonblocking fd). *)

  val next : block:bool -> t -> [ `Line of string | `Nothing | `Eof ]
  (** Next complete line; with [block:false] this only polls. *)
end

val run_loop : t -> io -> stats
(** The generic serve loop over any transport: drain available input
    (blocking only when idle), take a batch, reply in order, flush;
    finish when [`Eof] and the queue is empty.  Flushes the store on
    exit. *)

val serve_stdio : config -> stats
(** The [bg serve] stdin/stdout daemon: JSONL requests on stdin, JSONL
    responses on stdout, until EOF. *)

val serve_socket : ?max_requests:int -> config -> string -> stats
(** The Unix-domain-socket daemon: listen at [path] (an existing file
    there is replaced), serve any number of concurrent clients, answer
    each request on the connection it arrived on.  Stops on SIGINT /
    SIGTERM, or after [max_requests] answers when given. *)
