(** The batched analysis engine behind [bg serve].

    Requests pass through a bounded admission queue (overload is
    answered immediately with a typed [rejected] response — the queue
    never grows without bound), are taken in batches, keyed by space
    digest + op parameters so concurrent duplicates coalesce onto one
    computation, checked against the shared {!Store}, and the remaining
    unique keys computed in parallel on the shared domain pool.  A
    compute exception becomes a typed [error] response for that request
    alone — one poisoned request cannot take down its batch or the
    daemon.

    With [degrade] configured, load sheds {e gracefully}: cache-missing
    zeta/phi/gamma requests behind a backlog over the watermark — or on
    spaces too large for an exact sweep — are answered from the
    {!Bg_decay.Estimators} tier (certified lower bound + confidence
    interval, [degraded:true] on the wire) instead of being rejected.
    Exact → estimated → rejected, in that order.  Degraded answers are
    never stored: the cache key promises the exact value.

    With [chaos] armed ({!Chaos}), per-request stalls and the mid-batch
    crash point fire inside {!process_batch}; response-line faults fire
    at the reply boundary of {!run_loop}, identically on every
    transport.  Replies are sent only after {!Store.sync} journals the
    batch (group commit), so a crash at any point loses at most the
    in-flight batch and never an answered request.

    [ping] and [metrics] requests are answered at admission — a health
    probe or telemetry scrape works precisely when the queue is full.
    [ping] reports uptime, queue depth, hit rate, degraded-mode status,
    supervisor lineage (restarts, cumulative uptime across respawns) and
    SLO health; [metrics] adds a full registry snapshot (every counter,
    gauge and histogram with p50/p99) — what [bg top --socket] polls.

    Every request gets one [serve.request] span (queue-wait, batch id
    and cache outcome as attrs) and lands in the [serve.latency_s] /
    [serve.queue_wait_s] histograms; admission, batch, degraded-answer
    and disconnect counters are [serve.*] in the {!Bg_prelude.Obs}
    registry.  A request that carried {!Protocol.trace_context} gets the
    [trace_id] / [parent_span] recorded on its [serve.request] span and
    backdated [serve.queue_wait] / [serve.kernel] child spans, so
    {!Obs_tools.Trace.merge} can stitch the server's work under the
    originating client root. *)

type degrade = {
  queue_watermark : int;
      (** backlog (after taking a batch) at which misses degrade *)
  big_n : int;  (** spaces with [n >= big_n] always degrade *)
  nodes : int;  (** estimator strata (clamped to the space size) *)
  replicates : int;
  seed : int;
      (** per-key estimator seeds derive deterministically from this *)
}

val default_degrade : degrade
(** watermark 64, [big_n] 1024, 32 nodes, 6 replicates, seed 0. *)

type lineage = {
  restarts : int;  (** how many times the supervisor respawned a worker *)
  supervisor_started_s : float;  (** wall clock of supervisor start *)
  prior_uptime_s : float;  (** summed uptime of dead predecessor workers *)
}
(** Counters the supervisor threads into each worker incarnation (via
    [BG_SUPERVISE_*] environment variables, see {!Supervisor.lineage_env})
    so a respawned worker's [ping] keeps reporting cumulative figures. *)

type config = {
  ctx : Core.Decay.Ctx.t;  (** analysis context shared by all requests *)
  batch_size : int;  (** max requests taken per batch (default 32) *)
  max_queue : int;
      (** admission bound; arrivals beyond it are rejected (default 256) *)
  request_timeout_s : float option;
      (** per-compute wall-clock budget; overruns answer [error] *)
  store : Store.t option;  (** shared (optionally persistent) result cache *)
  degrade : degrade option;  (** graceful degradation; [None] = shed only *)
  chaos : Chaos.t option;  (** fault injection; [None] in production *)
  slo : Slo.t option;
      (** latency/error objectives tracked over every response; reported
          by [ping], [metrics] and [bg top] *)
  telemetry : Telemetry.t option;
      (** periodic registry snapshots to a ring-buffer JSONL file *)
  lineage : lineage option;  (** supervisor-threaded counters *)
}

val default_config : config

type stats = {
  mutable accepted : int;
  mutable rejected : int;  (** shed by admission control *)
  mutable failed : int;  (** parse errors + compute errors *)
  mutable served : int;  (** [ok] responses *)
  mutable computed : int;  (** cache misses actually computed *)
  mutable store_hits : int;
  mutable coalesced : int;  (** duplicates folded into a batch-mate *)
  mutable batches : int;
  mutable peak_queue : int;  (** high-water mark; [<= max_queue] always *)
  mutable degraded : int;  (** answers from the estimator tier *)
  mutable pings : int;
  mutable disconnects : int;  (** socket clients gone before EOF handshake *)
}

type t

val create : config -> t
(** @raise Invalid_argument if [batch_size < 1], [max_queue < 1], or a
    [degrade] field is out of range. *)

val stats : t -> stats

val process_batch :
  ?queue_depth:int ->
  t ->
  (Protocol.request * float) list ->
  Protocol.response list
(** Serve one batch of [(request, admission_time)] pairs (admission
    times from {!Bg_prelude.Obs.now_s}); responses come back in input
    order.  [queue_depth] (default 0) is the backlog left behind the
    batch — the degraded-mode watermark signal.  Exposed for tests and
    in-process drivers — the daemon loops call it internally. *)

type input =
  [ `Req of string * (string -> unit)
    (** a request line plus the reply function for its response line *)
  | `Nothing  (** nothing available right now (only when not blocking) *)
  | `Eof ]

type io = {
  read : block:bool -> input;
      (** [block:true] may wait for input; [block:false] must poll *)
  flush : unit -> unit;  (** called after each batch's replies *)
}

(** A nonblocking-capable line reader over a raw fd (select + internal
    buffer) — the daemons' input stage, reused by {!Loadgen}'s pipe
    driver for the response stream. *)
module Line_reader : sig
  type t

  val create : Unix.file_descr -> t

  val read_chunk : t -> unit
  (** Pull whatever bytes are ready (never blocks a nonblocking fd). *)

  val next : block:bool -> t -> [ `Line of string | `Nothing | `Eof ]
  (** Next complete line; with [block:false] this only polls. *)

  val pending_partial : t -> int
  (** Bytes of an incomplete trailing line sitting in the buffer. *)
end

val run_loop : ?should_stop:(unit -> bool) -> t -> io -> stats
(** The generic serve loop over any transport: drain available input
    (blocking only when idle), take a batch, {!Store.sync} the journal,
    reply in order, flush; finish when [`Eof] and the queue is empty.
    When [should_stop] flips true the loop stops {e reading}, drains the
    queued work, and exits — the SIGTERM drain path.  Flushes the store
    on exit. *)

val serve_stdio : config -> stats
(** The [bg serve] stdin/stdout daemon: JSONL requests on stdin, JSONL
    responses on stdout, until EOF.  SIGTERM / SIGINT drain the current
    queue and flush the store snapshot before exit. *)

val serve_socket : ?max_requests:int -> config -> string -> stats
(** The Unix-domain-socket daemon: listen at [path] (an existing file
    there is replaced), serve any number of concurrent clients, answer
    each request on the connection it arrived on.  A client
    disconnecting mid-request is logged and its partial line dropped;
    other clients are unaffected.  Stops on SIGINT / SIGTERM (draining
    first), or after [max_requests] answers when given. *)
