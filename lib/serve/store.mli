(** The digest-keyed result store shared across requests {e and} daemon
    restarts.

    In memory this is one {!Bg_prelude.Memo} table — the same
    max-entries cap and per-entry LRU eviction policy as the in-process
    analysis caches, with hit/miss/eviction counters mirrored into the
    {!Bg_prelude.Obs} registry as [memo.store.*].  On disk it is a JSONL
    snapshot (one [{"key":K,"result":V}] line per entry, least recently
    used first) written atomically through
    {!Bg_decay.Decay_io.with_atomic_out}: a crash mid-flush can never
    clobber the previous snapshot with a torn one.

    Loading is corruption-tolerant: a line that fails to parse — or
    parses to something without the expected fields — is counted
    ([store.corrupt_dropped]) and skipped.  A damaged entry costs one
    recompute, never a crashed daemon. *)

type t

val open_ : ?max_entries:int -> ?flush_every:int -> ?path:string -> unit -> t
(** Open a store capped at [max_entries] (default 4096, LRU-evicted).
    With [?path], the snapshot at [path] is loaded (leniently; a missing
    file is an empty store) and {!add} re-snapshots every [flush_every]
    (default 256) inserts.  Without [?path] the store is memory-only.
    @raise Invalid_argument if [flush_every < 1]. *)

val find : t -> string -> Obs_tools.Jsonl.t option
(** Cached result under a key ([<digest>/<op_key>]); refreshes LRU
    recency and counts a hit or miss. *)

val add : t -> string -> Obs_tools.Jsonl.t -> unit
(** Insert a computed result, evicting LRU entries beyond the cap, and
    snapshot to disk when the flush threshold is reached. *)

val flush : t -> unit
(** Snapshot to disk now (atomic temp-file + rename).  No-op for a
    memory-only store.  Call on daemon shutdown. *)

val length : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int

val loaded : t -> int
(** Entries restored from the snapshot at {!open_}. *)

val corrupt_dropped : t -> int
(** Damaged snapshot lines skipped at {!open_}. *)

val path : t -> string option
