(** The digest-keyed result store shared across requests {e and} daemon
    restarts — crash-safe via a write-ahead journal.

    In memory this is one {!Bg_prelude.Memo} table — the same
    max-entries cap and per-entry LRU eviction policy as the in-process
    analysis caches, with hit/miss/eviction counters mirrored into the
    {!Bg_prelude.Obs} registry as [memo.store.*].  On disk it is two
    files:

    - [PATH] — a JSONL snapshot (one [{"key":K,"result":V}] line per
      entry, least recently used first) written atomically through
      {!Bg_decay.Decay_io.with_atomic_out}: a crash mid-flush can never
      clobber the previous snapshot with a torn one.
    - [PATH.wal] — an append-only journal of entries added since the
      last snapshot.  Each record is md5-checksummed and appended with a
      single [write(2)]; {!sync} fsyncs it (the server group-commits
      once per batch), so a [SIGKILL] at any point loses at most the
      in-flight batch.

    {!open_} replays the snapshot, then the {e longest valid prefix} of
    the journal — recovery stops at the first unparseable or
    checksum-failing line (the torn tail of a crashed append) and counts
    what it discarded ([store.wal_torn]).  {!flush} compacts:
    snapshot-then-truncate, in that order, so a crash between the two
    merely replays entries the snapshot already holds.

    Snapshot loading stays corruption-tolerant: a damaged line is
    counted ([store.corrupt_dropped]) and skipped — it costs one
    recompute, never a crashed daemon, and a torn record can never reach
    a client. *)

type t

val open_ :
  ?max_entries:int ->
  ?flush_every:int ->
  ?path:string ->
  ?wal:bool ->
  ?chaos:Chaos.t ->
  unit ->
  t
(** Open a store capped at [max_entries] (default 4096, LRU-evicted).
    With [?path], the snapshot at [path] is loaded (leniently; a missing
    file is an empty store), the journal at [path ^ ".wal"] is replayed
    to its longest valid prefix, and {!add} compacts every [flush_every]
    (default 256) inserts.  [wal] (default [true]) opens the journal for
    appends; pass [false] for the PR 7 snapshot-only behaviour.  Without
    [?path] the store is memory-only.  [?chaos] arms the [pre-snapshot]
    and [mid-snapshot] crash points inside {!flush}.
    @raise Invalid_argument if [flush_every < 1]. *)

val find : t -> string -> Obs_tools.Jsonl.t option
(** Cached result under a key ([<digest>/<op_key>]); refreshes LRU
    recency and counts a hit or miss. *)

val add : t -> string -> Obs_tools.Jsonl.t -> unit
(** Insert a computed result: journal it ([store.wal_appends]), evict
    LRU entries beyond the cap, and compact when the flush threshold is
    reached.  Durable after the next {!sync} or {!flush}. *)

val sync : t -> unit
(** fsync journal appends since the last {!sync} ([store.wal_syncs]).
    The server calls this once per completed batch — group commit — so
    a crash loses at most the batch in flight.  No-op without a WAL. *)

val flush : t -> unit
(** Compact: snapshot atomically (temp-file + rename), then truncate the
    journal.  No-op for a memory-only store.  Call on daemon
    shutdown. *)

val close : t -> unit
(** {!flush}, then close the journal descriptor. *)

val length : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int

val loaded : t -> int
(** Entries restored from the snapshot at {!open_}. *)

val corrupt_dropped : t -> int
(** Damaged snapshot lines skipped at {!open_}. *)

val wal_recovered : t -> int
(** Journal entries replayed at {!open_} ([store.wal_recovered]). *)

val wal_torn : t -> int
(** Journal lines discarded as the torn tail at {!open_}. *)

val path : t -> string option
