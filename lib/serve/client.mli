(** The typed retrying client for [bg serve] — deadlines, seeded
    backoff, bounded retries, and a consecutive-failure circuit breaker.

    Retrying is safe by construction: requests are idempotent (equal
    request lines resolve to equal cache keys), so a repeat after a
    torn, dropped or timed-out answer at worst costs one extra cache
    hit.  The {e policy} half (breaker + backoff schedule) is
    transport-free — {!Loadgen}'s pipe driver runs on it — while
    {!connect}/{!request} add the Unix-socket transport.

    Backoff is exponential with seeded "equal jitter"
    ({!Bg_prelude.Rng.backoff}): distinct seeds de-synchronize a fleet's
    retry storms; one seed replays one schedule.

    The breaker opens after [breaker_threshold] {e consecutive}
    failures; requests then fail fast (["circuit breaker open"], no
    network, no wait) until [breaker_cooldown_s] passes, when exactly
    one half-open probe decides: success closes the breaker, failure
    re-opens it and restarts the cooldown.  Counters: [client.retries],
    [client.breaker_opens], [client.corrupt_lines],
    [client.deadline_misses]. *)

type config = {
  deadline_s : float option;
      (** per-attempt answer budget; [None] waits forever *)
  max_retries : int;  (** wire attempts beyond the first *)
  backoff_base_s : float;
  backoff_cap_s : float;
  breaker_threshold : int;  (** consecutive failures that trip it *)
  breaker_cooldown_s : float;
}

val default_config : config
(** 5 s deadline, 4 retries, 20 ms base / 1 s cap backoff, breaker at 8
    failures with a 0.5 s cooldown. *)

type breaker_state = Closed | Open | Half_open

type t
(** Retry/breaker policy state — shared across the requests of one
    logical client. *)

val create : ?config:config -> seed:int -> unit -> t
(** @raise Invalid_argument on non-positive deadlines/backoff, negative
    [max_retries], or [breaker_threshold < 1]. *)

val config : t -> config

val backoff_s : t -> attempt:int -> float
(** Jittered delay before retry [attempt] (0-based); advances the
    seeded stream. *)

val admit : t -> now:float -> bool
(** May a request go out at [now]?  [false] only while the breaker is
    open inside its cooldown; admission after the cooldown moves the
    breaker to half-open. *)

val record_success : t -> unit
val record_failure : t -> now:float -> unit
val count_retry : t -> unit
(** Bump the retry counters — for external drivers ({!Loadgen}) that
    run the wire themselves. *)

val breaker_state : t -> breaker_state
val retries : t -> int
val breaker_opens : t -> int

(** {1 The Unix-socket transport} *)

type conn

val connect : t -> string -> conn
(** [connect policy path] prepares a connection to the daemon socket at
    [path].  Lazy: the socket opens on first {!request}, and reopens
    transparently after a failure — which is how a supervised restart is
    ridden out. *)

val request : conn -> Protocol.request -> (Protocol.response, string) result
(** Send, await the matching id within the deadline, retry with backoff
    on any failure (timeout, torn stream, dead socket), fail fast when
    the breaker is open.  Corrupt response lines are counted and
    skipped, never surfaced; stale answers from timed-out attempts are
    discarded by reconnecting.  [Error] after [max_retries + 1]
    attempts.

    When tracing is on (or the request already carries
    {!Protocol.trace_context}), the logical request is recorded as one
    [client.request] root span with each wire attempt and each backoff
    sleep as child spans, and the wire carries the trace id plus the
    attempt span's id — the other half of the cross-process causal tree
    {!Obs_tools.Trace.merge} assembles. *)

val ping : conn -> (Protocol.response, string) result
(** {!request} with the [ping] health op. *)

val metrics : conn -> (Protocol.response, string) result
(** {!request} with the [metrics] telemetry-scrape op — a full registry
    snapshot from the live daemon ([bg top]'s poll). *)

val close : conn -> unit

val corrupt_seen : conn -> int
(** Mangled response lines this connection has skipped. *)
