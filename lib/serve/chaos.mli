(** Seeded fault injection at the serving layer's I/O and compute
    boundaries — the serving analogue of {!Bg_decay.Corrupt}.

    A chaos spec is a comma-separated list of faults:

    {v
    torn=P            tear a response line: deliver only a prefix, merged
                      into the next write (probability P per line)
    drop=P            silently drop a response line
    corrupt=P         flip 1–4 payload bytes to printable garbage
                      (framing survives; checksums/parsers must catch it)
    stall=P:SECONDS   sleep SECONDS before computing a request
    crash=POINT:N     die at the Nth arrival at POINT, one of
                      mid-batch | pre-snapshot | mid-snapshot
    v}

    e.g. ["drop=0.05,torn=0.02,stall=0.1:0.01,crash=mid-batch:3"].

    All decisions flow from one {!Bg_prelude.Rng} stream drawn in a
    fixed order, so equal [(spec, seed)] pairs produce bit-identical
    fault schedules — the E30 experiment and the chaos-smoke CI job
    replay exact failure sequences from a recorded seed. *)

type crash_point = Mid_batch | Pre_snapshot | Mid_snapshot

val crash_point_name : crash_point -> string

type spec = {
  torn : float;
  drop : float;
  corrupt : float;
  stall_prob : float;
  stall_s : float;
  crash : (crash_point * int) option;
}

val none : spec
(** The all-zero spec: no faults. *)

val parse : string -> (spec, string) result
(** Parse the grammar above.  Probabilities outside [0,1], negative
    durations, unknown faults or malformed clauses yield [Error] with a
    one-line message suitable for [user_error]. *)

val spec_to_string : spec -> string
(** Canonical round-trippable rendering (["none"] for {!none}). *)

exception Injected_crash of string
(** Raised at a crash point under {!Raise}; payload is the point name. *)

type action =
  | Sigkill  (** die by [SIGKILL] — a power-cut: no flush, no handlers *)
  | Raise    (** raise {!Injected_crash} — for in-process harnesses *)

type t

val create : ?action:action -> seed:int -> spec -> t
(** [create ~seed spec] makes an injector.  [action] defaults to
    {!Sigkill} (real daemons); experiments and unit tests pass
    {!Raise}. *)

val spec : t -> spec

val mangle :
  t -> string -> [ `Deliver of string | `Drop | `Drop_keep_carry ]
(** [mangle t line] decides this response line's fate.  [`Deliver s]
    writes [s] (possibly corrupted, possibly prefixed by an earlier torn
    fragment); [`Drop] writes nothing; [`Drop_keep_carry] writes nothing
    now but holds a torn prefix that will garble the next delivery.
    Exactly three Bernoulli draws per call regardless of outcome. *)

val take_carry : t -> string option
(** Pending torn prefix, if any — emit it bare at stream end so the
    client sees the partial final write. *)

val stall : t -> unit
(** Roll the stall fault once; sleeps [stall_s] on a hit. *)

val at : t -> crash_point -> unit
(** Record an arrival at [point]; on the Nth arrival at the configured
    crash point, die per the action.  Counted under [chaos.crashes]. *)

val maybe_at : t option -> crash_point -> unit
(** [at] through an option, for call sites without chaos wired in. *)
