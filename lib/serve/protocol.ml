(* The JSONL wire schema of `bg serve`.

   One request per line in, one response per line out.  Requests carry
   the decay space inline (matrix rows or CSV text) or by file path, so
   the daemon never needs shared state with its clients beyond the
   stream itself.  Responses are typed: a request always gets exactly
   one of ok / rejected / error back, and overload is a first-class
   answer (status "rejected"), never a hung connection.

   Ping is the one op with no space: a health probe answered at
   admission (never queued), whose result reports uptime, queue depth,
   hit rate and degraded-mode status.

   A Done response may additionally carry degraded:true — the answer
   came from the estimator tier (with its confidence interval in the
   result) rather than an exact sweep, because the server was above its
   load watermark.  The flag is omitted when false, so pre-resilience
   response lines parse identically.

   All parsing goes through Obs_tools.Jsonl (floats round-trip via
   %.17g), so a workload generated from a seed produces bit-identical
   request lines — and therefore identical space digests — on every
   run, which is what makes the persistent cache hit across restarts. *)

module J = Obs_tools.Jsonl

type op =
  | Zeta
  | Phi
  | Gamma of float
  | Summarize
  | Estimate of { nodes : int; replicates : int; seed : int }
  | Ping
  | Metrics

type space_spec =
  | Inline of string * float array array
  | Csv of string
  | File of string

(* Trace context rides every request and is echoed on its responses:
   [trace_id] names the logical request across every process it touches;
   [parent_span] is the sender's span id, so the server's spans can be
   re-parented under the client's when trace files are merged
   (Obs_tools.Trace.merge).  Both fields are omitted from the wire when
   absent, so pre-tracing lines parse unchanged. *)
type trace_context = { trace_id : string; parent_span : int }

type request = {
  id : string;
  op : op;
  space : space_spec option;
  trace : trace_context option;
}

type cache_outcome = Hit | Miss | Coalesced

type response =
  | Done of {
      id : string;
      op_name : string;
      result : J.t;
      cache : cache_outcome;
      queue_wait_s : float;
      batch : int;
      elapsed_s : float;
      degraded : bool;
      trace : trace_context option;
    }
  | Rejected of { id : string; reason : string; trace : trace_context option }
  | Failed of { id : string; reason : string; trace : trace_context option }

let op_name = function
  | Zeta -> "zeta"
  | Phi -> "phi"
  | Gamma _ -> "gamma"
  | Summarize -> "summarize"
  | Estimate _ -> "estimate"
  | Ping -> "ping"
  | Metrics -> "metrics"

(* The cache key suffix: every parameter that changes the result must be
   part of it (gamma's separation, the estimator design), so distinct
   questions about one space never collide in the store. *)
let op_key = function
  | Zeta -> "zeta"
  | Phi -> "phi"
  | Gamma r -> Printf.sprintf "gamma:%.17g" r
  | Summarize -> "summarize"
  | Estimate { nodes; replicates; seed } ->
      Printf.sprintf "estimate:%d:%d:%d" nodes replicates seed
  | Ping -> "ping"
  | Metrics -> "metrics"

let cache_outcome_name = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Coalesced -> "coalesced"

let cache_outcome_of_name = function
  | "hit" -> Some Hit
  | "miss" -> Some Miss
  | "coalesced" -> Some Coalesced
  | _ -> None

let response_id = function
  | Done { id; _ } | Rejected { id; _ } | Failed { id; _ } -> id

let response_trace = function
  | Done { trace; _ } | Rejected { trace; _ } | Failed { trace; _ } -> trace

(* -------------------------------------------------------- trace context *)

let trace_fields = function
  | None -> []
  | Some { trace_id; parent_span } ->
      ("trace_id", J.Str trace_id)
      ::
      (if parent_span > 0 then
         [ ("parent_span", J.Num (float_of_int parent_span)) ]
       else [])

let trace_of_json j =
  match J.mem_str "trace_id" j with
  | None -> None
  | Some trace_id ->
      let parent_span =
        match J.mem_num "parent_span" j with
        | Some v when Float.is_finite v && v > 0. -> int_of_float v
        | _ -> 0
      in
      Some { trace_id; parent_span }

(* ------------------------------------------------------------ requests *)

let space_to_json = function
  | Inline (name, rows) ->
      J.Obj
        [ ("name", J.Str name);
          ( "matrix",
            J.Arr
              (Array.to_list rows
              |> List.map (fun row ->
                     J.Arr (Array.to_list row |> List.map (fun v -> J.Num v))))
          ) ]
  | Csv text -> J.Obj [ ("csv", J.Str text) ]
  | File path -> J.Obj [ ("file", J.Str path) ]

let request_to_json r =
  let base = [ ("id", J.Str r.id); ("op", J.Str (op_name r.op)) ] in
  let params =
    match r.op with
    | Gamma sep -> [ ("r", J.Num sep) ]
    | Estimate { nodes; replicates; seed } ->
        [ ("nodes", J.Num (float_of_int nodes));
          ("replicates", J.Num (float_of_int replicates));
          ("seed", J.Num (float_of_int seed)) ]
    | Zeta | Phi | Summarize | Ping | Metrics -> []
  in
  let space =
    match r.space with
    | None -> []
    | Some s -> [ ("space", space_to_json s) ]
  in
  J.Obj (base @ params @ trace_fields r.trace @ space)

let request_to_string r = J.to_string (request_to_json r)

let space_of_json j =
  match (J.member "matrix" j, J.mem_str "csv" j, J.mem_str "file" j) with
  | Some (J.Arr rows), _, _ ->
      let row_of = function
        | J.Arr cells ->
            cells
            |> List.map (function
                 | J.Num v -> v
                 | _ -> failwith "space.matrix: non-numeric cell")
            |> Array.of_list
        | _ -> failwith "space.matrix: row is not an array"
      in
      let name =
        Option.value (J.mem_str "name" j) ~default:"inline"
      in
      Ok (Inline (name, Array.of_list (List.map row_of rows)))
  | _, Some text, _ -> Ok (Csv text)
  | _, _, Some path -> Ok (File path)
  | _ -> Error "space: need one of matrix / csv / file"

let int_field name j ~default =
  match J.mem_num name j with
  | None -> default
  | Some v -> int_of_float v

let request_of_json j =
  match (J.mem_str "id" j, J.mem_str "op" j) with
  | None, _ -> Error "request: missing id"
  | _, None -> Error "request: missing op"
  | Some id, Some op -> (
      match
        match op with
        | "zeta" -> Ok Zeta
        | "phi" -> Ok Phi
        | "summarize" -> Ok Summarize
        | "ping" -> Ok Ping
        | "metrics" -> Ok Metrics
        | "gamma" -> (
            match J.mem_num "r" j with
            | Some r when r > 0. && Float.is_finite r -> Ok (Gamma r)
            | Some _ -> Error "gamma: r must be finite and positive"
            | None -> Error "gamma: missing r")
        | "estimate" ->
            Ok
              (Estimate
                 {
                   nodes = int_field "nodes" j ~default:32;
                   replicates = int_field "replicates" j ~default:6;
                   seed = int_field "seed" j ~default:0;
                 })
        | other -> Error (Printf.sprintf "unknown op %S" other)
      with
      | Error e -> Error e
      | Ok op -> (
          let trace = trace_of_json j in
          match J.member "space" j with
          | None ->
              if op = Ping || op = Metrics then Ok { id; op; space = None; trace }
              else Error "request: missing space"
          | Some space_j -> (
              match space_of_json space_j with
              | Error e -> Error e
              | exception Failure e -> Error e
              | Ok space -> Ok { id; op; space = Some space; trace })))

let request_of_string line =
  match J.parse line with
  | exception J.Bad msg -> Error ("malformed JSON: " ^ msg)
  | j -> request_of_json j

(* ----------------------------------------------------------- responses *)

let response_to_json = function
  | Done
      { id; op_name; result; cache; queue_wait_s; batch; elapsed_s; degraded;
        trace }
    ->
      J.Obj
        ([ ("id", J.Str id); ("status", J.Str "ok"); ("op", J.Str op_name);
           ("cache", J.Str (cache_outcome_name cache));
           ("queue_wait_s", J.Num queue_wait_s);
           ("batch", J.Num (float_of_int batch));
           ("elapsed_s", J.Num elapsed_s) ]
        @ (if degraded then [ ("degraded", J.Bool true) ] else [])
        @ trace_fields trace
        @ [ ("result", result) ])
  | Rejected { id; reason; trace } ->
      J.Obj
        ([ ("id", J.Str id); ("status", J.Str "rejected");
           ("reason", J.Str reason) ]
        @ trace_fields trace)
  | Failed { id; reason; trace } ->
      J.Obj
        ([ ("id", J.Str id); ("status", J.Str "error");
           ("reason", J.Str reason) ]
        @ trace_fields trace)

let response_to_string r = J.to_string (response_to_json r)

let response_of_json j =
  match (J.mem_str "id" j, J.mem_str "status" j) with
  | None, _ -> Error "response: missing id"
  | _, None -> Error "response: missing status"
  | Some id, Some "rejected" ->
      Ok
        (Rejected
           { id; reason = Option.value (J.mem_str "reason" j) ~default:"";
             trace = trace_of_json j })
  | Some id, Some "error" ->
      Ok
        (Failed
           { id; reason = Option.value (J.mem_str "reason" j) ~default:"";
             trace = trace_of_json j })
  | Some id, Some "ok" -> (
      match
        ( J.mem_str "op" j,
          Option.bind (J.mem_str "cache" j) cache_outcome_of_name,
          J.member "result" j )
      with
      | Some op_name, Some cache, Some result ->
          Ok
            (Done
               {
                 id;
                 op_name;
                 result;
                 cache;
                 queue_wait_s =
                   Option.value (J.mem_num "queue_wait_s" j) ~default:0.;
                 batch = int_field "batch" j ~default:0;
                 elapsed_s =
                   Option.value (J.mem_num "elapsed_s" j) ~default:0.;
                 degraded =
                   Option.value (J.mem_bool "degraded" j) ~default:false;
                 trace = trace_of_json j;
               })
      | _ -> Error "ok response: missing op / cache / result")
  | Some _, Some other -> Error (Printf.sprintf "unknown status %S" other)

let response_of_string line =
  match J.parse line with
  | exception J.Bad msg -> Error ("malformed JSON: " ^ msg)
  | j -> response_of_json j
