(* Daemon supervision for `bg serve --supervise`.

   The supervisor process owns the original stdio and simply respawns
   the worker (the same executable minus the --supervise flag) whenever
   it dies abnormally — killed by a signal (chaos SIGKILL, OOM) or a
   nonzero exit that isn't a usage error.  The worker inherits the
   supervisor's stdin/stdout directly, so across a restart clients keep
   talking to the same pipe: bytes the dead worker never read are still
   in the pipe for its successor, only the in-flight partial line and
   unanswered batch are lost — exactly what a retrying Client recovers.

   Restart pacing is capped exponential backoff (no jitter: one
   supervisor, nothing to de-synchronize), so a worker that dies at
   birth in a loop cannot spin the machine.  A clean exit (0) or a usage
   error (2) ends supervision — restarting a daemon that was told to
   stop, or one that can never start, helps nobody. *)

module Obs = Core.Prelude.Obs

let c_restarts = Obs.counter "supervisor.restarts"

type outcome = {
  restarts : int;
  final_status : Unix.process_status;
}

(* Worker lineage rides environment variables: each incarnation is told
   how many respawns preceded it, when supervision began, and how long
   its predecessors ran in total — so a ping answered by worker #3 can
   report the whole supervised history, not just its own uptime. *)
let lineage_env = "BG_SUPERVISE_RESTARTS"
let started_env = "BG_SUPERVISE_STARTED_S"
let prior_uptime_env = "BG_SUPERVISE_PRIOR_UPTIME_S"

let read_lineage () =
  match Sys.getenv_opt lineage_env with
  | None -> None
  | Some restarts ->
      let float_env name =
        match Sys.getenv_opt name with
        | None -> 0.
        | Some s -> ( match float_of_string_opt s with Some f -> f | None -> 0.)
      in
      Some
        ( (match int_of_string_opt restarts with Some n -> max 0 n | None -> 0),
          float_env started_env,
          float_env prior_uptime_env )

(* OCaml signal numbers are internal (negative); name the common ones. *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else Printf.sprintf "signal %d" s

let status_line = function
  | Unix.WEXITED c -> Printf.sprintf "exited %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by %s" (signal_name s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by %s" (signal_name s)

let run ?(max_restarts = 16) ?(backoff_base_s = 0.05) ?(backoff_cap_s = 2.)
    argv =
  if Array.length argv = 0 then invalid_arg "Supervisor.run: empty argv";
  if max_restarts < 0 then
    invalid_arg "Supervisor.run: max_restarts must be >= 0";
  let child = ref None in
  (* Forward termination to the worker so `kill <supervisor>` stops the
     whole tree; the worker's own handlers then drain and flush. *)
  let forward signal_no =
    match !child with
    | Some pid -> ( try Unix.kill pid signal_no with Unix.Unix_error _ -> ())
    | None -> ()
  in
  let old_int =
    try Some (Sys.signal Sys.sigint (Sys.Signal_handle forward))
    with Invalid_argument _ -> None
  in
  let old_term =
    try Some (Sys.signal Sys.sigterm (Sys.Signal_handle forward))
    with Invalid_argument _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter (Sys.set_signal Sys.sigint) old_int;
      Option.iter (Sys.set_signal Sys.sigterm) old_term)
    (fun () ->
      let supervise_started = Unix.gettimeofday () in
      let prior_uptime = ref 0. in
      let rec loop restarts =
        Unix.putenv lineage_env (string_of_int restarts);
        Unix.putenv started_env (Printf.sprintf "%.6f" supervise_started);
        Unix.putenv prior_uptime_env (Printf.sprintf "%.6f" !prior_uptime);
        let spawned_at = Unix.gettimeofday () in
        let pid =
          Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
        in
        child := Some pid;
        let rec wait () =
          match Unix.waitpid [] pid with
          | _, status -> status
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        in
        let status = wait () in
        prior_uptime := !prior_uptime +. (Unix.gettimeofday () -. spawned_at);
        child := None;
        match status with
        | Unix.WEXITED 0 | Unix.WEXITED 2 -> { restarts; final_status = status }
        | _ ->
            if restarts >= max_restarts then begin
              Printf.eprintf
                "bg serve: worker %s; restart limit (%d) reached, giving up\n%!"
                (status_line status) max_restarts;
              { restarts; final_status = status }
            end
            else begin
              let delay =
                Float.min backoff_cap_s
                  (backoff_base_s *. Float.of_int (1 lsl min restarts 20))
              in
              Printf.eprintf
                "bg serve: worker %s; restarting in %.2fs (restart %d/%d)\n%!"
                (status_line status) delay (restarts + 1) max_restarts;
              Obs.incr c_restarts;
              Unix.sleepf delay;
              loop (restarts + 1)
            end
      in
      loop 0)
