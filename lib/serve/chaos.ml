(* Seeded fault injection at the serving layer's I/O and compute
   boundaries — the serving analogue of Bg_decay.Corrupt.

   A chaos spec names response-stream faults (torn / dropped / corrupted
   lines), per-request stalls, and one crash point with a countdown.
   All randomness flows through one SplitMix64 stream created from an
   explicit seed, drawn in a fixed order (one decision per response
   line, one per request), so equal (spec, seed) inject bit-identical
   fault schedules on every run — E30 and the chaos-smoke CI job replay
   the same failures deterministically.

   Torn writes are simulated at line granularity: the victim line's
   prefix is carried into the next delivery, producing exactly the
   garbled merged line a real torn write followed by a fresh write
   produces on a byte stream.  The carry lives in the mangler, so every
   transport (stdio, socket, in-process) tears identically. *)

module Rng = Core.Prelude.Rng
module Obs = Core.Prelude.Obs

type crash_point = Mid_batch | Pre_snapshot | Mid_snapshot

let crash_point_name = function
  | Mid_batch -> "mid-batch"
  | Pre_snapshot -> "pre-snapshot"
  | Mid_snapshot -> "mid-snapshot"

let crash_point_of_name = function
  | "mid-batch" -> Some Mid_batch
  | "pre-snapshot" -> Some Pre_snapshot
  | "mid-snapshot" -> Some Mid_snapshot
  | _ -> None

type spec = {
  torn : float;
  drop : float;
  corrupt : float;
  stall_prob : float;
  stall_s : float;
  crash : (crash_point * int) option;
}

let none =
  { torn = 0.; drop = 0.; corrupt = 0.; stall_prob = 0.; stall_s = 0.;
    crash = None }

exception Injected_crash of string

(* How a triggered crash manifests: [Sigkill] for real daemons (the
   process dies as if the machine lost power — no at_exit, no flush),
   [Raise] for in-process harnesses (the exception escapes the serve
   loop; tests catch it). *)
type action = Sigkill | Raise

(* ------------------------------------------------------------ spec text *)

let spec_to_string s =
  let parts = ref [] in
  let addf name v = if v > 0. then parts := Printf.sprintf "%s=%g" name v :: !parts in
  addf "torn" s.torn;
  addf "drop" s.drop;
  addf "corrupt" s.corrupt;
  if s.stall_prob > 0. then
    parts := Printf.sprintf "stall=%g:%g" s.stall_prob s.stall_s :: !parts;
  (match s.crash with
  | Some (p, n) ->
      parts := Printf.sprintf "crash=%s:%d" (crash_point_name p) n :: !parts
  | None -> ());
  match List.rev !parts with [] -> "none" | l -> String.concat "," l

let parse text =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let prob name v =
    match float_of_string_opt v with
    | Some p when p >= 0. && p <= 1. && Float.is_finite p -> Ok p
    | _ -> err "chaos: %s must be a probability in [0,1] (got %S)" name v
  in
  let parts =
    String.split_on_char ',' (String.trim text)
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then err "chaos: empty spec"
  else
    List.fold_left
      (fun acc part ->
        Result.bind acc (fun spec ->
            match String.index_opt part '=' with
            | None -> err "chaos: %S is not FAULT=VALUE" part
            | Some i ->
                let key = String.sub part 0 i in
                let v = String.sub part (i + 1) (String.length part - i - 1) in
                (match key with
                | "torn" -> Result.map (fun p -> { spec with torn = p }) (prob key v)
                | "drop" -> Result.map (fun p -> { spec with drop = p }) (prob key v)
                | "corrupt" ->
                    Result.map (fun p -> { spec with corrupt = p }) (prob key v)
                | "stall" -> (
                    match String.split_on_char ':' v with
                    | [ p; secs ] -> (
                        match (prob "stall" p, float_of_string_opt secs) with
                        | Ok p, Some s when s >= 0. && Float.is_finite s ->
                            Ok { spec with stall_prob = p; stall_s = s }
                        | (Error _ as e), _ -> e
                        | _ -> err "chaos: stall seconds must be >= 0 (got %S)" secs)
                    | _ -> err "chaos: stall wants PROB:SECONDS (got %S)" v)
                | "crash" -> (
                    match String.split_on_char ':' v with
                    | [ point; n ] -> (
                        match (crash_point_of_name point, int_of_string_opt n) with
                        | Some p, Some k when k >= 1 ->
                            Ok { spec with crash = Some (p, k) }
                        | None, _ ->
                            err
                              "chaos: crash point must be mid-batch | \
                               pre-snapshot | mid-snapshot (got %S)"
                              point
                        | _ -> err "chaos: crash count must be >= 1 (got %S)" n)
                    | _ -> err "chaos: crash wants POINT:N (got %S)" v)
                | other -> err "chaos: unknown fault %S" other)))
      (Ok none) parts

(* ---------------------------------------------------------------- state *)

type t = {
  spec : spec;
  action : action;
  rng : Rng.t;
  mutable carry : string; (* torn prefix awaiting the next delivery *)
  mutable hits : (crash_point * int) list; (* arrivals per crash point *)
}

let c_torn = Obs.counter "chaos.torn"
let c_dropped = Obs.counter "chaos.dropped"
let c_corrupted = Obs.counter "chaos.corrupted"
let c_stalled = Obs.counter "chaos.stalled"
let c_crashes = Obs.counter "chaos.crashes"

let create ?(action = Sigkill) ~seed spec =
  { spec; action; rng = Rng.create seed; carry = ""; hits = [] }

let spec t = t.spec

(* One decision per response line, in a fixed draw order (drop, torn,
   corrupt), so the fault schedule is independent of which faults are
   enabled downstream of the first hit. *)
let mangle t line =
  let dropped = Rng.bernoulli t.rng t.spec.drop in
  let torn = Rng.bernoulli t.rng t.spec.torn in
  let corrupted = Rng.bernoulli t.rng t.spec.corrupt in
  if dropped then begin
    Obs.incr c_dropped;
    `Drop
  end
  else
    let line =
      (* A pending torn prefix garbles this delivery, whatever else
         happens to it. *)
      if t.carry = "" then line
      else begin
        let merged = t.carry ^ line in
        t.carry <- "";
        merged
      end
    in
    if torn && String.length line > 1 then begin
      Obs.incr c_torn;
      let cut = 1 + Rng.int t.rng (String.length line - 1) in
      t.carry <- String.sub line 0 cut;
      `Drop_keep_carry
    end
    else if corrupted && String.length line > 0 then begin
      Obs.incr c_corrupted;
      let b = Bytes.of_string line in
      (* Flip a handful of bytes to printable garbage; never a newline,
         so line framing survives and the damage lands in one payload. *)
      let flips = 1 + Rng.int t.rng 4 in
      for _ = 1 to flips do
        Bytes.set b (Rng.int t.rng (Bytes.length b))
          (Char.chr (33 + Rng.int t.rng 94))
      done;
      `Deliver (Bytes.to_string b)
    end
    else `Deliver line

(* Flush a pending torn prefix at stream end: the client sees the bare
   partial line, exactly like a torn final write. *)
let take_carry t =
  if t.carry = "" then None
  else begin
    let c = t.carry in
    t.carry <- "";
    Some c
  end

let stall t =
  if t.spec.stall_prob > 0. && Rng.bernoulli t.rng t.spec.stall_prob then begin
    Obs.incr c_stalled;
    if t.spec.stall_s > 0. then Unix.sleepf t.spec.stall_s
  end

let at t point =
  match t.spec.crash with
  | Some (p, n) when p = point ->
      let seen = try List.assoc point t.hits with Not_found -> 0 in
      let seen = seen + 1 in
      t.hits <- (point, seen) :: List.remove_assoc point t.hits;
      if seen = n then begin
        Obs.incr c_crashes;
        match t.action with
        | Raise -> raise (Injected_crash (crash_point_name point))
        | Sigkill ->
            (* Die like a power cut: no at_exit, no buffered flushes.
               Prefer SIGKILL so not even a signal handler runs. *)
            Unix.kill (Unix.getpid ()) Sys.sigkill
      end
  | _ -> ()

let maybe_at t point = match t with None -> () | Some t -> at t point
