(* Periodic metrics snapshots for a live daemon.

   One JSONL line per interval with absolute values *and* deltas against
   the previous snapshot: absolutes make any single line a complete
   scrape, deltas make rate computation (bg top, bg slo) trivial without
   the consumer having to handle counter resets — the producer already
   clamped them.

   The file is a ring.  Append-only between rewrites (a supervised
   worker respawn reopens in append mode and keeps the ring going);
   once more than 2 * max_lines lines have accumulated, the newest
   max_lines are rewritten to a temp file which is renamed into place —
   the same atomic-replace idiom the store snapshot uses, so a reader
   never sees a torn file. *)

module Obs = Core.Prelude.Obs
module J = Obs_tools.Jsonl

let delta ~prev ~cur = if cur >= prev then cur - prev else cur
let delta_f ~prev ~cur = if cur >= prev then cur -. prev else cur

type t = {
  path : string;
  ival_s : float;
  max_lines : int;
  mutable oc : out_channel;
  mutable lines : string Queue.t; (* newest max_lines, for ring rewrite *)
  mutable written : int; (* lines in the file right now *)
  mutable last_s : float; (* last snapshot time; nan = never *)
  mutable seq : int;
  mutable prev : (string * Obs.metric_snapshot) list;
  started_s : float;
}

let read_tail path max_lines =
  if not (Sys.file_exists path) then (Queue.create (), 0)
  else begin
    let q = Queue.create () in
    let ic = open_in path in
    (try
       while true do
         Queue.push (input_line ic) q;
         if Queue.length q > max_lines then ignore (Queue.pop q)
       done
     with End_of_file -> close_in ic);
    (q, Queue.length q)
  end

let create ?(interval_s = 1.) ?(max_lines = 512) path =
  (* Continue an existing ring rather than clobbering it: the respawned
     worker's first delta then clamps against the old process's last
     absolute values. *)
  let lines, written = read_tail path max_lines in
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
  in
  {
    path;
    ival_s = interval_s;
    max_lines;
    oc;
    lines;
    written;
    last_s = Float.nan;
    seq = 0;
    prev = [];
    started_s = Obs.now_s ();
  }

let interval_s t = t.ival_s

let prev_of t name =
  List.assoc_opt name t.prev

let obj_of_pairs pairs = J.Obj pairs

let snapshot_json t ~now snap =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, m) ->
      match m with
      | Obs.Counter_snapshot cur ->
          let prev =
            match prev_of t name with
            | Some (Obs.Counter_snapshot p) -> p
            | _ -> 0
          in
          counters :=
            ( name,
              obj_of_pairs
                [ ("value", J.Num (float_of_int cur));
                  ("delta", J.Num (float_of_int (delta ~prev ~cur))) ] )
            :: !counters
      | Obs.Gauge_snapshot v -> gauges := (name, J.Num v) :: !gauges
      | Obs.Histogram_snapshot { count; sum; buckets } ->
          let pcount, psum, pbuckets =
            match prev_of t name with
            | Some (Obs.Histogram_snapshot p) -> (p.count, p.sum, p.buckets)
            | _ -> (0, 0., [])
          in
          let reset = count < pcount in
          let bucket_delta (i, cur) =
            let prev =
              if reset then 0
              else
                match List.assoc_opt i pbuckets with
                | Some p -> p
                | None -> 0
            in
            (string_of_int i, J.Num (float_of_int (delta ~prev ~cur)))
          in
          let bd =
            List.filter_map
              (fun (i, c) ->
                let (k, v) = bucket_delta (i, c) in
                match v with J.Num 0. -> None | _ -> Some (k, v))
              buckets
          in
          let q h q' =
            (* quantile over absolute buckets, same estimator as
               Obs.histogram_quantile but from the sparse snapshot *)
            let total = List.fold_left (fun n (_, c) -> n + c) 0 h in
            if total = 0 then 0.
            else begin
              let rank =
                int_of_float
                  (Float.round (q' *. float_of_int (total - 1)))
              in
              let rec go seen = function
                | [] -> 0.
                | (b, c) :: rest ->
                    let seen = seen + c in
                    if seen > rank then
                      if b <= 0 then 0.
                      else if b >= Obs.num_buckets - 1 then
                        Obs.bucket_lower_bound b
                      else Obs.bucket_lower_bound b *. Float.sqrt 2.
                    else go seen rest
              in
              go 0 h
            end
          in
          histograms :=
            ( name,
              obj_of_pairs
                [ ("count", J.Num (float_of_int count));
                  ( "count_delta",
                    J.Num (float_of_int (delta ~prev:pcount ~cur:count)) );
                  ("sum", J.Num sum);
                  ("sum_delta", J.Num (delta_f ~prev:psum ~cur:sum));
                  ("p50", J.Num (q buckets 0.5));
                  ("p99", J.Num (q buckets 0.99));
                  ("buckets_delta", J.Obj bd) ] )
            :: !histograms)
    snap;
  J.Obj
    [
      ("type", J.Str "telemetry");
      ("seq", J.Num (float_of_int t.seq));
      ("t_s", J.Num now);
      ("uptime_s", J.Num (now -. t.started_s));
      ("counters", J.Obj (List.rev !counters));
      ("gauges", J.Obj (List.rev !gauges));
      ("histograms", J.Obj (List.rev !histograms));
    ]

let rewrite_ring t =
  let tmp = t.path ^ ".tmp" in
  let oc = open_out tmp in
  Queue.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    t.lines;
  close_out oc;
  close_out_noerr t.oc;
  Sys.rename tmp t.path;
  t.oc <- open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 t.path;
  t.written <- Queue.length t.lines

let append_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc;
  Queue.push line t.lines;
  if Queue.length t.lines > t.max_lines then ignore (Queue.pop t.lines);
  t.written <- t.written + 1;
  if t.written > 2 * t.max_lines then rewrite_ring t

let force_snapshot ?now t =
  let now = match now with Some n -> n | None -> Obs.now_s () in
  let snap = Obs.snapshot () in
  let line = J.to_string (snapshot_json t ~now snap) in
  append_line t line;
  t.prev <- snap;
  t.seq <- t.seq + 1;
  t.last_s <- now

let maybe_snapshot ?now t =
  let now = match now with Some n -> n | None -> Obs.now_s () in
  if Float.is_nan t.last_s || now -. t.last_s >= t.ival_s then
    force_snapshot ~now t

let close t = close_out_noerr t.oc

(* ---------------------------------------------------------- prometheus *)

let sanitize name =
  String.map (fun c -> if c = '.' || c = '-' then '_' else c) name

let prometheus snap =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      let pname = sanitize name in
      match m with
      | Obs.Counter_snapshot v ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" pname);
          Buffer.add_string b (Printf.sprintf "%s %d\n" pname v)
      | Obs.Gauge_snapshot v ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" pname);
          Buffer.add_string b (Printf.sprintf "%s %.17g\n" pname v)
      | Obs.Histogram_snapshot { count; sum; buckets } ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" pname);
          let cumulative = ref 0 in
          List.iter
            (fun (i, c) ->
              cumulative := !cumulative + c;
              let le =
                if i >= Obs.num_buckets - 1 then "+Inf"
                else Printf.sprintf "%.17g" (Obs.bucket_lower_bound (i + 1))
              in
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" pname le
                   !cumulative))
            buckets;
          if
            (* Prometheus requires a terminal +Inf bucket *)
            not
              (List.exists (fun (i, _) -> i >= Obs.num_buckets - 1) buckets)
          then
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname !cumulative);
          Buffer.add_string b (Printf.sprintf "%s_sum %.17g\n" pname sum);
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" pname count))
    snap;
  Buffer.contents b
