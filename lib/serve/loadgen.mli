(** [bg loadgen] — the production-shaped workload replayer for
    {!Server}.

    A workload expands from one integer seed into a pool of distinct
    decay spaces and a request trace over them with zipf-skewed
    repetition — a few hot spaces dominate, a long tail appears once or
    twice, which is the access pattern that makes a shared cache earn
    its keep.  {!generate} is a pure function of the {!workload} record:
    the same seed yields byte-identical request lines (and therefore
    identical space digests server-side) on every run, at any driver
    concurrency — the property behind the warm-restart cache-hit
    acceptance test. *)

val zipf_cdf : s:float -> n:int -> float array
(** Cumulative distribution of the zipf([s]) law on ranks [1..n]
    ([P(rank=k)] proportional to [k^-s]; [s = 0] is uniform).
    @raise Invalid_argument if [n < 1]. *)

val zipf_pick : Bg_prelude.Rng.t -> float array -> int
(** Draw a 0-based rank by binary search over a {!zipf_cdf}. *)

type workload = {
  seed : int;
  requests : int;
  spaces : int;  (** distinct decay spaces in the pool *)
  nodes : int;  (** nodes per space *)
  zipf_s : float;  (** skew: 0 = uniform, larger = hotter head *)
}

val default_workload : workload
(** [{seed = 1; requests = 2000; spaces = 200; nodes = 24;
    zipf_s = 1.1}]. *)

val generate : workload -> Protocol.request list
(** Expand a workload into its request trace (ids [r000000], …).  Ops
    mix roughly 60% zeta / 20% phi / 10% gamma / 5% summarize / 5%
    estimate; estimate designs derive from the space rank so repeats of
    a hot space repeat the full cache key.
    @raise Invalid_argument on a non-positive size or a bad skew. *)

type report = {
  sent : int;
  answered : int;  (** responses received (of any status) *)
  ok : int;
  rejected : int;  (** typed admission-control rejections *)
  errors : int;
  hits : int;
  misses : int;
  coalesced : int;
  wall_s : float;
  throughput_rps : float;  (** answered / wall *)
  mean_s : float;  (** latency statistics over answered requests *)
  p50_s : float;
  p99_s : float;  (** exact sorted-sample quantiles, not bucketed *)
}

val hit_rate : report -> float
(** [hits / ok] ([0.] when nothing succeeded). *)

val build_report :
  sent:int -> wall_s:float -> (Protocol.response * float) list -> report
(** Fold [(response, latency_s)] observations into a report. *)

val report_to_json : report -> Obs_tools.Jsonl.t
val pp_report : Format.formatter -> report -> unit

val drive_inproc :
  ?window:int -> Server.t -> Protocol.request list -> report
(** Replay a trace against an in-process engine, closed-loop with at
    most [window] (default 32) requests in flight — tests and the perf
    gate drive this. *)

val drive_fds :
  ?window:int ->
  ?rate:float ->
  req_w:Unix.file_descr ->
  resp_r:Unix.file_descr ->
  Protocol.request list ->
  report
(** Replay a trace against a daemon speaking the protocol over a pipe
    pair: requests down [req_w] (closed at end-of-trace so the daemon
    sees EOF), responses up [resp_r].  Closed-loop with a bounded
    in-flight [window]; [rate] adds an open-loop cap (requests issued no
    faster than [rate]/s).  Reads and writes are multiplexed with
    [select] and writes are nonblocking, so a busy daemon cannot
    deadlock the generator. *)

val drive_subprocess :
  ?window:int ->
  ?rate:float ->
  string array ->
  Protocol.request list ->
  report
(** Spawn [argv] (a [bg serve] command line), {!drive_fds} the trace
    through its stdin/stdout, reap it, and report. *)
