(** [bg loadgen] — the production-shaped workload replayer for
    {!Server}.

    A workload expands from one integer seed into a pool of distinct
    decay spaces and a request trace over them with zipf-skewed
    repetition — a few hot spaces dominate, a long tail appears once or
    twice, which is the access pattern that makes a shared cache earn
    its keep.  {!generate} is a pure function of the {!workload} record:
    the same seed yields byte-identical request lines (and therefore
    identical space digests server-side) on every run, at any driver
    concurrency — the property behind the warm-restart cache-hit
    acceptance test.

    Both drivers take an optional {!Client} policy and then exercise the
    full retry path: deadlines, seeded backoff, bounded re-sends (safe —
    requests are idempotent by cache key), breaker pauses, and
    first-answer-wins dedup, so each request contributes at most one
    answer to the report however chaotic the daemon.  Unparseable
    response lines (chaos-torn or corrupted) are counted and retried —
    a corrupt payload is never scored as an answer.

    When tracing is on ({!Bg_prelude.Obs.set_trace_file}), both drivers
    preallocate a [client.request] root span id per request, send it on
    the wire as [parent_span], and emit the (backdated) root span when
    the request resolves — the client half of the cross-process causal
    tree {!Obs_tools.Trace.merge} assembles. *)

val zipf_cdf : s:float -> n:int -> float array
(** Cumulative distribution of the zipf([s]) law on ranks [1..n]
    ([P(rank=k)] proportional to [k^-s]; [s = 0] is uniform).
    @raise Invalid_argument if [n < 1]. *)

val zipf_pick : Bg_prelude.Rng.t -> float array -> int
(** Draw a 0-based rank by binary search over a {!zipf_cdf}. *)

type workload = {
  seed : int;
  requests : int;
  spaces : int;  (** distinct decay spaces in the pool *)
  nodes : int;  (** nodes per space *)
  zipf_s : float;  (** skew: 0 = uniform, larger = hotter head *)
}

val default_workload : workload
(** [{seed = 1; requests = 2000; spaces = 200; nodes = 24;
    zipf_s = 1.1}]. *)

val generate : workload -> Protocol.request list
(** Expand a workload into its request trace (ids [r000000], …).  Ops
    mix roughly 60% zeta / 20% phi / 10% gamma / 5% summarize / 5%
    estimate; estimate designs derive from the space rank so repeats of
    a hot space repeat the full cache key.  Every request carries a
    deterministic {!Protocol.trace_context} ([t<seed>-r<i>]), so a p99
    exemplar from one report names the same request in any run's trace
    files.
    @raise Invalid_argument on a non-positive size or a bad skew. *)

type report = {
  sent : int;  (** distinct requests issued (first attempts) *)
  answered : int;  (** responses received (of any status) *)
  ok : int;
  rejected : int;  (** typed admission-control rejections *)
  errors : int;
  hits : int;
  misses : int;
  coalesced : int;
  degraded : int;  (** [ok] answers served by the estimator tier *)
  retries : int;  (** wire re-sends beyond first attempts *)
  duplicates : int;  (** late answers discarded by first-answer-wins *)
  corrupt_lines : int;  (** unparseable response lines skipped *)
  gave_up : int;  (** requests abandoned after the retry budget *)
  wall_s : float;
  throughput_rps : float;  (** answered / wall *)
  mean_s : float;  (** latency statistics over answered requests *)
  p50_s : float;
  p99_s : float;  (** exact sorted-sample quantiles, not bucketed *)
  exemplars : (string * float) list;
      (** trace ids of the slowest-decile answers, worst first (capped
          at 8) — [bg trace report --id TID] jumps to the causal tree *)
  slo_samples : (float * bool) list;
      (** [(latency_s, ok)] per resolved request, for
          {!Slo.eval_samples}; gave-ups score as [(infinity, false)] *)
}

val hit_rate : report -> float
(** [hits / ok] ([0.] when nothing succeeded). *)

val build_report :
  ?retries:int ->
  ?duplicates:int ->
  ?corrupt_lines:int ->
  ?gave_up:int ->
  sent:int ->
  wall_s:float ->
  (Protocol.response * float) list ->
  report
(** Fold [(response, latency_s)] observations into a report. *)

val report_to_json : report -> Obs_tools.Jsonl.t
val pp_report : Format.formatter -> report -> unit

val drive_inproc :
  ?window:int -> ?client:Client.t -> Server.t -> Protocol.request list -> report
(** Replay a trace against an in-process engine, closed-loop with at
    most [window] (default 32) requests in flight — tests and the perf
    gate drive this.  With [client], replies lost to chaos are detected
    at batch boundaries and re-sent under the policy's retry budget;
    this recovery requires [window <=] the engine's [batch_size] (every
    in-flight request is then inside the batch being flushed). *)

val drive_fds :
  ?window:int ->
  ?rate:float ->
  ?client:Client.t ->
  req_w:Unix.file_descr ->
  resp_r:Unix.file_descr ->
  Protocol.request list ->
  report
(** Replay a trace against a daemon speaking the protocol over a pipe
    pair: requests down [req_w] (closed once nothing more will ever be
    sent, so the daemon sees EOF), responses up [resp_r].  Closed-loop
    with a bounded in-flight [window]; [rate] adds an open-loop cap
    (requests issued no faster than [rate]/s).  Reads and writes are
    multiplexed with [select] and writes are nonblocking, so a busy
    daemon cannot deadlock the generator.  With [client], attempts that
    outlive the policy deadline are re-sent after jittered backoff, the
    breaker pauses issuing after consecutive failures, and late answers
    to timed-out attempts count as duplicates, never second results. *)

val drive_subprocess :
  ?window:int ->
  ?rate:float ->
  ?client:Client.t ->
  string array ->
  Protocol.request list ->
  report
(** Spawn [argv] (a [bg serve] command line), {!drive_fds} the trace
    through its stdin/stdout, reap it, and report. *)
