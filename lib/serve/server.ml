(* The batched analysis engine behind `bg serve`.

   Requests flow through three stages:

     admission  a bounded queue (max_queue).  A request arriving at a
                full queue is answered immediately with a typed
                "rejected" response — overload sheds load instead of
                collapsing latency, and the queue can never grow without
                bound.  Pings are answered here too: a health probe
                never waits behind analysis work.
     batching   up to batch_size queued requests are taken per cycle.
                Within a batch, requests are keyed by space digest + op
                parameters; concurrent duplicates coalesce onto a single
                computation, and the shared store answers keys any
                earlier batch (or an earlier daemon life, via the
                persistent snapshot + WAL) already computed.
     compute    the unique missing keys of a batch run in parallel on
                the shared domain pool — one task per key with the
                inner sweeps pinned sequential, so parallelism comes
                from request-level fan-out; a batch with a single
                missing key instead runs it on the caller with the full
                configured job count, so large lone requests still use
                the whole machine.  Either way results are bit-identical
                (job counts never change results).  A compute exception
                is caught inside its task and becomes a typed "error"
                response: one poisoned request cannot cancel its batch
                or crash the daemon.

   Degraded mode (config.degrade): when the backlog behind a batch
   crosses the watermark, or a space is too large for an exact sweep,
   zeta/phi/gamma requests that miss the cache are answered from the
   Estimators tier — a certified lower bound with its confidence
   interval, tagged degraded:true — instead of being shed.  Load
   degrades exact -> estimated -> rejected.  Degraded answers are never
   written to the store: the cache key promises the exact value.

   Chaos (config.chaos): the injector's per-request stall and mid-batch
   crash points fire inside process_batch; response-line faults fire at
   the reply boundary in run_loop, so every transport misbehaves
   identically.  With a WAL-backed store the group-commit ordering below
   (compute -> journal -> fsync -> reply) means a crash at any point
   loses at most the in-flight batch, and no reply is ever sent for an
   entry that could vanish.

   Observability: one serve.request span per request (attrs: id, op,
   batch, cache outcome, queue-wait and total latency), one serve.batch
   span per cycle, serve.latency_s / serve.queue_wait_s histograms and
   serve.{accepted,rejected,computed,degraded,...} counters — all
   through the existing Obs registry, so `--metrics` and `--trace` just
   work. *)

module P = Protocol
module J = Obs_tools.Jsonl
module D = Core.Decay.Decay_space
module Io = Core.Decay.Decay_io
module Met = Core.Decay.Metricity
module Fad = Core.Decay.Fading
module Stat = Core.Decay.Statistics
module Est = Core.Decay.Estimators
module Ctx = Core.Decay.Ctx
module Par = Core.Prelude.Parallel
module Obs = Core.Prelude.Obs
module Rng = Core.Prelude.Rng

type degrade = {
  queue_watermark : int;
  big_n : int;
  nodes : int;
  replicates : int;
  seed : int;
}

let default_degrade =
  { queue_watermark = 64; big_n = 1024; nodes = 32; replicates = 6; seed = 0 }

(* Supervisor lineage: counters the supervisor threads into each worker
   incarnation (via BG_SUPERVISE_* environment variables, see
   Supervisor), so a respawned worker's ping does not report zeroed
   telemetry. *)
type lineage = {
  restarts : int;
  supervisor_started_s : float;
  prior_uptime_s : float; (* summed uptime of dead predecessor workers *)
}

type config = {
  ctx : Ctx.t;
  batch_size : int;
  max_queue : int;
  request_timeout_s : float option;
  store : Store.t option;
  degrade : degrade option;
  chaos : Chaos.t option;
  slo : Slo.t option;
  telemetry : Telemetry.t option;
  lineage : lineage option;
}

let default_config =
  {
    ctx = Ctx.default;
    batch_size = 32;
    max_queue = 256;
    request_timeout_s = None;
    store = None;
    degrade = None;
    chaos = None;
    slo = None;
    telemetry = None;
    lineage = None;
  }

type stats = {
  mutable accepted : int;
  mutable rejected : int;
  mutable failed : int;
  mutable served : int;
  mutable computed : int;
  mutable store_hits : int;
  mutable coalesced : int;
  mutable batches : int;
  mutable peak_queue : int;
  mutable degraded : int;
  mutable pings : int;
  mutable disconnects : int;
}

type t = { config : config; stats : stats; started_s : float }

let create config =
  if config.batch_size < 1 then
    invalid_arg "Server.create: batch_size must be positive";
  if config.max_queue < 1 then
    invalid_arg "Server.create: max_queue must be positive";
  (match config.degrade with
  | Some d ->
      if d.queue_watermark < 1 then
        invalid_arg "Server.create: degrade watermark must be positive";
      if d.nodes < 3 then
        invalid_arg "Server.create: degrade nodes must be >= 3";
      if d.replicates < 1 then
        invalid_arg "Server.create: degrade replicates must be positive"
  | None -> ());
  {
    config;
    stats =
      {
        accepted = 0; rejected = 0; failed = 0; served = 0; computed = 0;
        store_hits = 0; coalesced = 0; batches = 0; peak_queue = 0;
        degraded = 0; pings = 0; disconnects = 0;
      };
    started_s = Obs.now_s ();
  }

let stats t = t.stats

let c_accepted = Obs.counter "serve.accepted"
let c_rejected = Obs.counter "serve.rejected"
let c_failed = Obs.counter "serve.failed"
let c_computed = Obs.counter "serve.computed"
let c_store_hits = Obs.counter "serve.store_hits"
let c_coalesced = Obs.counter "serve.coalesced"
let c_batches = Obs.counter "serve.batches"
let c_degraded = Obs.counter "serve.degraded"
let c_pings = Obs.counter "serve.pings"
let c_disconnects = Obs.counter "serve.client_disconnects"
let h_latency = Obs.histogram "serve.latency_s"
let h_queue_wait = Obs.histogram "serve.queue_wait_s"
let h_batch_fill = Obs.histogram "serve.batch_fill"
let batch_counter = Atomic.make 0

(* ------------------------------------------------------------- compute *)

let is_raw_file path =
  match
    In_channel.with_open_bin path (fun ic -> really_input_string ic 8)
  with
  | magic -> magic = "BGDECAY1"
  | exception End_of_file -> false

let resolve_space = function
  | P.Inline (name, rows) -> D.of_matrix ~name rows
  | P.Csv text -> Io.of_csv text
  | P.File path ->
      if is_raw_file path then Io.load_raw_mmap path else Io.load path

let witness_json (w : Met.witness) =
  J.Obj
    [ ("x", J.Num (float_of_int w.x)); ("y", J.Num (float_of_int w.y));
      ("z", J.Num (float_of_int w.z)) ]

let compute ~ctx op space =
  match op with
  | P.Zeta ->
      let w = Met.zeta_witness ~ctx space in
      J.Obj [ ("zeta", J.Num w.value); ("witness", witness_json w) ]
  | P.Phi ->
      let w = Met.phi_witness ~ctx space in
      J.Obj [ ("phi", J.Num w.value); ("witness", witness_json w) ]
  | P.Gamma r ->
      J.Obj [ ("gamma", J.Num (Fad.gamma ~ctx space ~r)); ("r", J.Num r) ]
  | P.Summarize ->
      let s = Stat.summarize ~ctx space in
      J.Obj
        [ ("n", J.Num (float_of_int s.n)); ("min_db", J.Num s.min_db);
          ("max_db", J.Num s.max_db); ("median_db", J.Num s.median_db);
          ("dynamic_range_db", J.Num s.dynamic_range_db);
          ("asymmetry_db", J.Num s.asymmetry_db) ]
  | P.Estimate { nodes; replicates; seed } ->
      let e =
        Est.zeta ~ctx ~replicates ~nodes (Rng.create seed)
          (Est.of_space space)
      in
      J.Obj
        [ ("zeta_lower", J.Num e.point); ("hi", J.Num e.hi);
          ("confidence", J.Num e.confidence) ]
  | P.Ping | P.Metrics -> invalid_arg "ping/metrics are answered at admission"

let compute_guarded ~ctx ~timeout op space =
  let body () =
    match timeout with
    | None -> compute ~ctx op space
    | Some seconds -> Par.with_deadline ~seconds (fun () -> compute ~ctx op space)
  in
  match body () with
  | v -> Ok v
  | exception Par.Timeout -> Error "wall-clock budget exceeded"
  | exception (Invalid_argument m | Failure m | Sys_error m) -> Error m

(* The degraded tier: answer zeta/phi/gamma from Estimators, seeded
   deterministically per cache key so identical requests under identical
   load degrade to bit-identical estimates.  Returns None for ops with
   no estimator (they stay exact) and spaces too small to stratify. *)
let compute_degraded ~ctx d op space key =
  let n = D.n space in
  let rng = Rng.create (d.seed lxor Hashtbl.hash key) in
  let estimate_json tag (e : Est.estimate) =
    Some
      (J.Obj
         [ (tag, J.Num e.point); ("lo", J.Num e.lo); ("hi", J.Num e.hi);
           ("confidence", J.Num e.confidence);
           ("replicates", J.Num (float_of_int (Array.length e.replicates)))
         ])
  in
  match op with
  | P.Zeta when n >= 3 ->
      let nodes = min d.nodes n in
      if nodes < 3 then None
      else
        estimate_json "zeta_lower"
          (Est.zeta ~ctx ~replicates:d.replicates ~nodes rng
             (Est.of_space space))
  | P.Phi when n >= 3 ->
      let nodes = min d.nodes n in
      if nodes < 3 then None
      else
        estimate_json "phi_lower"
          (Est.phi ~ctx ~replicates:d.replicates ~nodes rng
             (Est.of_space space))
  | P.Gamma r when n >= 1 ->
      let listeners = max 1 (min d.nodes n) in
      estimate_json "gamma_lower"
        (Est.gamma ~ctx ~replicates:d.replicates ~listeners rng
           (Est.of_space space) ~r)
  | _ -> None

(* ---------------------------------------------------------------- ping *)

(* Supervisor lineage fields, shared by ping and metrics: a worker
   respawned by the supervisor keeps reporting cumulative restart and
   uptime figures rather than starting over from zero. *)
let lineage_fields t ~now =
  let uptime = Float.max 0. (now -. t.started_s) in
  match t.config.lineage with
  | None -> [ ("restarts", J.Num 0.); ("total_uptime_s", J.Num uptime) ]
  | Some l ->
      [ ("restarts", J.Num (float_of_int l.restarts));
        ( "supervisor_uptime_s",
          J.Num (Float.max 0. (now -. l.supervisor_started_s)) );
        ("total_uptime_s", J.Num (l.prior_uptime_s +. uptime)) ]

let slo_fields t ~now =
  match t.config.slo with
  | None -> []
  | Some slo ->
      let statuses = Slo.report slo ~now_s:now in
      [ ("slo", J.Arr (List.map Slo.status_to_json statuses));
        ("slo_healthy", J.Bool (not (Slo.violated statuses))) ]

let ping_result t ~queue_depth =
  let st = t.stats in
  let now = Obs.now_s () in
  let hit_rate =
    if st.served > 0 then float_of_int st.store_hits /. float_of_int st.served
    else 0.
  in
  J.Obj
    ([ ("uptime_s", J.Num (Float.max 0. (now -. t.started_s)));
       ("queue_depth", J.Num (float_of_int queue_depth));
       ("accepted", J.Num (float_of_int st.accepted));
       ("served", J.Num (float_of_int st.served));
       ("hit_rate", J.Num hit_rate);
       ("degraded_answers", J.Num (float_of_int st.degraded));
       ("degrade_enabled", J.Bool (t.config.degrade <> None)) ]
    @ lineage_fields t ~now
    @ slo_fields t ~now)

(* The metrics op: one full registry scrape plus the server's own stats,
   answered at admission like ping so a scraper works during overload.
   This is what `bg top --socket` polls. *)
let metrics_result t ~queue_depth =
  let st = t.stats in
  let now = Obs.now_s () in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, m) ->
      match m with
      | Obs.Counter_snapshot v ->
          counters := (name, J.Num (float_of_int v)) :: !counters
      | Obs.Gauge_snapshot v -> gauges := (name, J.Num v) :: !gauges
      | Obs.Histogram_snapshot { count; sum; buckets } ->
          let q q' =
            let total = count in
            if total = 0 then 0.
            else begin
              let rank =
                int_of_float (Float.round (q' *. float_of_int (total - 1)))
              in
              let rec go seen = function
                | [] -> 0.
                | (b, c) :: rest ->
                    let seen = seen + c in
                    if seen > rank then
                      if b <= 0 then 0.
                      else if b >= Obs.num_buckets - 1 then
                        Obs.bucket_lower_bound b
                      else Obs.bucket_lower_bound b *. Float.sqrt 2.
                    else go seen rest
              in
              go 0 buckets
            end
          in
          histograms :=
            ( name,
              J.Obj
                [ ("count", J.Num (float_of_int count)); ("sum", J.Num sum);
                  ("p50", J.Num (q 0.5)); ("p99", J.Num (q 0.99)) ] )
            :: !histograms)
    (Obs.snapshot ());
  J.Obj
    ([ ("uptime_s", J.Num (Float.max 0. (now -. t.started_s)));
       ("queue_depth", J.Num (float_of_int queue_depth));
       ( "stats",
         J.Obj
           [ ("accepted", J.Num (float_of_int st.accepted));
             ("rejected", J.Num (float_of_int st.rejected));
             ("failed", J.Num (float_of_int st.failed));
             ("served", J.Num (float_of_int st.served));
             ("computed", J.Num (float_of_int st.computed));
             ("store_hits", J.Num (float_of_int st.store_hits));
             ("coalesced", J.Num (float_of_int st.coalesced));
             ("batches", J.Num (float_of_int st.batches));
             ("peak_queue", J.Num (float_of_int st.peak_queue));
             ("degraded", J.Num (float_of_int st.degraded));
             ("pings", J.Num (float_of_int st.pings));
             ("disconnects", J.Num (float_of_int st.disconnects)) ] );
       ("counters", J.Obj (List.rev !counters));
       ("gauges", J.Obj (List.rev !gauges));
       ("histograms", J.Obj (List.rev !histograms)) ]
    @ lineage_fields t ~now
    @ slo_fields t ~now)

let admission_response t ~queue_depth ~id ~op ~trace =
  t.stats.pings <- t.stats.pings + 1;
  Obs.incr c_pings;
  P.Done
    {
      id;
      op_name = P.op_name op;
      result =
        (match op with
        | P.Metrics -> metrics_result t ~queue_depth
        | _ -> ping_result t ~queue_depth);
      cache = P.Miss;
      queue_wait_s = 0.;
      batch = 0;
      elapsed_s = 0.;
      degraded = false;
      trace;
    }

(* ------------------------------------------------------------- batches *)

(* What admission knows about a request once its space is resolved. *)
type resolved =
  | Bad of string (* unresolvable space: typed error *)
  | Keyed of D.t * string (* space + full cache key *)
  | Health (* ping/metrics: answered without touching the compute path *)

let resolve req =
  match (req.P.op, req.P.space) with
  | (P.Ping | P.Metrics), _ -> Health
  | _, None -> Bad "request: missing space"
  | _, Some spec -> (
      match resolve_space spec with
      | space ->
          (* Hex, not the raw 16 MD5 bytes: the key must survive a JSONL
             snapshot round-trip as printable text. *)
          Keyed
            (space, Digest.to_hex (D.digest space) ^ "/" ^ P.op_key req.P.op)
      | exception (Invalid_argument m | Failure m | Sys_error m) -> Bad m)

(* Process one batch of admitted requests (with their admission
   timestamps).  [queue_depth] is the backlog left behind the batch —
   the degraded-mode watermark signal.  Returns one response per
   request, in input order. *)
let process_batch ?(queue_depth = 0) t reqs =
  let cfg = t.config and st = t.stats in
  let batch = 1 + Atomic.fetch_and_add batch_counter 1 in
  let n = List.length reqs in
  Obs.with_span "serve.batch"
    ~attrs:[ ("batch", Obs.I batch); ("n", Obs.I n) ]
    (fun () ->
      Obs.observe h_batch_fill (float_of_int n);
      let started_s = Obs.now_s () in
      (* Chaos: per-request stall rolls, one per batch member. *)
      (match cfg.chaos with
      | Some c -> List.iter (fun _ -> Chaos.stall c) reqs
      | None -> ());
      let resolved = List.map (fun (req, t0) -> (req, t0, resolve req)) reqs in
      (* Which keys answer from the degraded tier this cycle: a cache
         miss on zeta/phi/gamma when the backlog is over the watermark,
         or whenever the space is too big for an exact sweep.  Store
         hits stay exact — a hit is both cheaper and better. *)
      let over_watermark =
        match cfg.degrade with
        | Some d -> queue_depth >= d.queue_watermark
        | None -> false
      in
      let wants_degrade space =
        match cfg.degrade with
        | None -> false
        | Some d -> over_watermark || D.n space >= d.big_n
      in
      (* One compute per distinct key: the first requester owns it, later
         duplicates coalesce.  Store hits skip compute entirely. *)
      let owners = Hashtbl.create 16 in
      let from_store = Hashtbl.create 16 in
      let degraded_results = Hashtbl.create 4 in
      List.iter
        (fun (req, _, r) ->
          match r with
          | Bad _ | Health -> ()
          | Keyed (space, key) ->
              if
                not
                  (Hashtbl.mem owners key || Hashtbl.mem from_store key
                  || Hashtbl.mem degraded_results key)
              then begin
                match Option.bind cfg.store (fun s -> Store.find s key) with
                | Some v -> Hashtbl.add from_store key v
                | None -> (
                    match
                      if wants_degrade space then
                        Option.bind cfg.degrade (fun d ->
                            compute_degraded ~ctx:cfg.ctx d req.P.op space key)
                      else None
                    with
                    | Some v -> Hashtbl.add degraded_results key v
                    | None -> Hashtbl.add owners key (req.P.op, space))
              end)
        resolved;
      let to_compute =
        Hashtbl.fold (fun key (op, space) acc -> (key, op, space) :: acc)
          owners []
        (* Deterministic task order regardless of hashing. *)
        |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
      in
      let timeout = cfg.request_timeout_s in
      (* Each compute is timed explicitly (not just spanned) so response
         assembly can re-emit the kernel sweep as a backdated child of
         every requester's serve.request span — the merged causal tree
         then shows the sweep under each originating client root. *)
      let timed key f =
        let c0 = Obs.now_s () in
        let r = f () in
        (key, r, c0, Obs.now_s () -. c0)
      in
      let computed =
        match to_compute with
        | [] -> []
        | [ (key, op, space) ] ->
            (* A lone compute keeps the configured within-request
               parallelism: nothing else to overlap it with. *)
            [ timed key (fun () -> compute_guarded ~ctx:cfg.ctx ~timeout op space) ]
        | _ ->
            (* Several distinct keys: fan out across the pool, one task
               per key, inner sweeps sequential.  Results are identical
               either way; only the parallelism axis moves. *)
            let seq_ctx = { cfg.ctx with Ctx.jobs = Some 1 } in
            let tasks =
              to_compute
              |> List.map (fun (key, op, space) () ->
                     Obs.with_span "serve.compute"
                       ~attrs:
                         [ ("op", Obs.S (P.op_name op));
                           ("batch", Obs.I batch) ]
                       (fun () ->
                         timed key (fun () ->
                             compute_guarded ~ctx:seq_ctx ~timeout op space)))
              |> Array.of_list
            in
            Array.to_list (Par.run tasks)
      in
      (* Chaos: the mid-batch crash point sits between compute and the
         store writes — results in hand, nothing journaled, no reply
         sent.  The whole batch is the loss, exactly the WAL's promised
         worst case. *)
      Chaos.maybe_at cfg.chaos Chaos.Mid_batch;
      let results = Hashtbl.create 16 in
      let timings = Hashtbl.create 16 in
      List.iter
        (fun (key, r, c0, cdur) ->
          Hashtbl.replace results key r;
          Hashtbl.replace timings key (c0, cdur);
          match (r, cfg.store) with
          | Ok v, Some store -> Store.add store key v
          | _ -> ())
        computed;
      (* Assemble responses in input order; the first requester of a
         computed key reports "miss", later duplicates "coalesced". *)
      let miss_seen = Hashtbl.create 16 in
      List.map
        (fun (req, t0, r) ->
          let finished_s = Obs.now_s () in
          let queue_wait_s = Float.max 0. (started_s -. t0) in
          let elapsed_s = Float.max 0. (finished_s -. t0) in
          let outcome_of key =
            if Hashtbl.mem from_store key then P.Hit
            else if Hashtbl.mem miss_seen key then P.Coalesced
            else begin
              Hashtbl.add miss_seen key ();
              P.Miss
            end
          in
          let trace = req.P.trace in
          let response =
            match r with
            | Bad reason -> P.Failed { id = req.P.id; reason; trace }
            | Health ->
                admission_response t ~queue_depth ~id:req.P.id ~op:req.P.op
                  ~trace
            | Keyed (_, key) -> (
                match Hashtbl.find_opt degraded_results key with
                | Some v ->
                    P.Done
                      {
                        id = req.P.id;
                        op_name = P.op_name req.P.op;
                        result = v;
                        cache = outcome_of key;
                        queue_wait_s;
                        batch;
                        elapsed_s;
                        degraded = true;
                        trace;
                      }
                | None -> (
                    let result =
                      match Hashtbl.find_opt from_store key with
                      | Some v -> Ok v
                      | None -> (
                          match Hashtbl.find_opt results key with
                          | Some r -> r
                          | None -> Error "internal: result missing")
                    in
                    match result with
                    | Error reason -> P.Failed { id = req.P.id; reason; trace }
                    | Ok v ->
                        P.Done
                          {
                            id = req.P.id;
                            op_name = P.op_name req.P.op;
                            result = v;
                            cache = outcome_of key;
                            queue_wait_s;
                            batch;
                            elapsed_s;
                            degraded = false;
                            trace;
                          }))
          in
          (* The per-request span: wall time of the request itself lives
             in the queue_wait_s / elapsed_s attrs (the span closes at
             response assembly).  When the request carried trace context,
             the span records it — trace_id plus the client's span id —
             which is what lets Obs_tools.Trace.merge re-parent this
             subtree under the originating client root.  Queue wait and
             the kernel sweep are re-emitted as backdated children, so
             the merged tree attributes the request's latency stage by
             stage. *)
          let trace_attrs =
            match trace with
            | None -> []
            | Some { P.trace_id; parent_span } ->
                ("trace_id", Obs.S trace_id)
                ::
                (if parent_span > 0 then
                   [ ("parent_span", Obs.I parent_span) ]
                 else [])
          in
          Obs.with_span "serve.request"
            ~attrs:
              ([ ("id", Obs.S req.P.id);
                 ("op", Obs.S (P.op_name req.P.op));
                 ("batch", Obs.I batch);
                 ( "cache",
                   Obs.S
                     (match response with
                     | P.Done { degraded = true; _ } -> "degraded"
                     | P.Done { cache; _ } -> P.cache_outcome_name cache
                     | P.Rejected _ -> "rejected"
                     | P.Failed _ -> "error") );
                 ("queue_wait_s", Obs.F queue_wait_s);
                 ("elapsed_s", Obs.F elapsed_s) ]
              @ trace_attrs)
            (fun () ->
              (match r with
              | Keyed (_, key) when Obs.tracing () ->
                  if queue_wait_s > 0. then
                    ignore
                      (Obs.emit_span_at ~name:"serve.queue_wait"
                         ~start_s:t0 ~dur_s:queue_wait_s ());
                  (match Hashtbl.find_opt timings key with
                  | Some (c0, cdur) ->
                      ignore
                        (Obs.emit_span_at ~name:"serve.kernel"
                           ~attrs:[ ("op", Obs.S (P.op_name req.P.op)) ]
                           ~start_s:c0 ~dur_s:cdur ())
                  | None -> ())
              | _ -> ());
              Obs.observe h_latency elapsed_s;
              Obs.observe h_queue_wait queue_wait_s;
              (match cfg.slo with
              | Some slo ->
                  Slo.record slo ~now_s:finished_s ~latency_s:elapsed_s
                    ~ok:(match response with P.Done _ -> true | _ -> false)
              | None -> ());
              (match response with
              | P.Done { degraded = true; _ } ->
                  st.served <- st.served + 1;
                  st.degraded <- st.degraded + 1;
                  Obs.incr c_degraded
              | P.Done { op_name = "ping"; _ } -> st.served <- st.served + 1
              | P.Done { cache; _ } ->
                  st.served <- st.served + 1;
                  (match cache with
                  | P.Hit ->
                      st.store_hits <- st.store_hits + 1;
                      Obs.incr c_store_hits
                  | P.Miss ->
                      st.computed <- st.computed + 1;
                      Obs.incr c_computed
                  | P.Coalesced ->
                      st.coalesced <- st.coalesced + 1;
                      Obs.incr c_coalesced)
              | P.Failed _ ->
                  st.failed <- st.failed + 1;
                  Obs.incr c_failed
              | P.Rejected _ -> ());
              response))
        resolved)

(* ---------------------------------------------------------------- loop *)

type input =
  [ `Req of string * (string -> unit) | `Nothing | `Eof ]

type io = { read : block:bool -> input; flush : unit -> unit }

let error_id line =
  match J.parse line with
  | exception J.Bad _ -> "?"
  | j -> Option.value (J.mem_str "id" j) ~default:"?"

let run_loop ?(should_stop = fun () -> false) t io =
  let cfg = t.config and st = t.stats in
  (* Response lines pass through the chaos mangler on their way out, so
     every transport tears, drops and corrupts identically. *)
  let send =
    match cfg.chaos with
    | None -> fun reply line -> reply line
    | Some c -> (
        fun reply line ->
          match Chaos.mangle c line with
          | `Deliver l -> reply l
          | `Drop | `Drop_keep_carry -> ())
  in
  let queue : (P.request * float * (string -> unit)) Queue.t =
    Queue.create ()
  in
  let eof = ref false in
  let admit line reply =
    match P.request_of_string line with
    | Ok ({ P.op = P.Ping | P.Metrics; _ } as req) ->
        (* Health probes and telemetry scrapes bypass the queue
           entirely: they must answer during overload, which is exactly
           when the queue is full. *)
        send reply
          (P.response_to_string
             (admission_response t ~queue_depth:(Queue.length queue)
                ~id:req.P.id ~op:req.P.op ~trace:req.P.trace))
    | parsed ->
        if Queue.length queue >= cfg.max_queue then begin
          (* Shed load with a typed answer: the queue is bounded by
             construction, and accepted requests keep a bounded wait. *)
          st.rejected <- st.rejected + 1;
          Obs.incr c_rejected;
          (match cfg.slo with
          | Some slo ->
              Slo.record slo ~now_s:(Obs.now_s ()) ~latency_s:0. ~ok:false
          | None -> ());
          let trace =
            match parsed with Ok req -> req.P.trace | Error _ -> None
          in
          send reply
            (P.response_to_string
               (P.Rejected
                  {
                    id = error_id line;
                    reason =
                      Printf.sprintf "queue full (%d pending)" cfg.max_queue;
                    trace;
                  }))
        end
        else
          match parsed with
          | Error reason ->
              st.failed <- st.failed + 1;
              Obs.incr c_failed;
              send reply
                (P.response_to_string
                   (P.Failed { id = error_id line; reason; trace = None }))
          | Ok req ->
              st.accepted <- st.accepted + 1;
              Obs.incr c_accepted;
              Queue.add (req, Obs.now_s (), reply) queue
  in
  let rec drain ~block =
    if not (!eof || should_stop ()) then
      match io.read ~block with
      | `Req (line, reply) ->
          admit line reply;
          drain ~block:false
      | `Nothing -> ()
      | `Eof -> eof := true
  in
  while not ((!eof || should_stop ()) && Queue.is_empty queue) do
    (* Block only when idle; once work is queued, take whatever input is
       already waiting and get on with the batch.  A signal interrupting
       the blocking read surfaces as `Nothing, so should_stop is
       re-checked promptly. *)
    drain ~block:(Queue.is_empty queue && not (should_stop ()));
    st.peak_queue <- max st.peak_queue (Queue.length queue);
    Option.iter (fun tel -> Telemetry.maybe_snapshot tel) cfg.telemetry;
    if not (Queue.is_empty queue) then begin
      let batch = ref [] in
      let replies = ref [] in
      while not (Queue.is_empty queue) && List.length !batch < cfg.batch_size
      do
        let req, t0, reply = Queue.take queue in
        batch := (req, t0) :: !batch;
        replies := reply :: !replies
      done;
      let responses =
        process_batch ~queue_depth:(Queue.length queue) t (List.rev !batch)
      in
      st.batches <- st.batches + 1;
      Obs.incr c_batches;
      (* Group commit: make the batch's store entries durable before any
         reply leaves — an answered request is never lost to a crash. *)
      Option.iter Store.sync cfg.store;
      List.iter2
        (fun reply resp -> send reply (P.response_to_string resp))
        (List.rev !replies) responses;
      io.flush ()
    end
  done;
  io.flush ();
  Option.iter Store.flush cfg.store;
  (* The tail of the run must land in the ring even if the last interval
     had not elapsed: a drained shutdown leaves complete telemetry. *)
  Option.iter
    (fun tel ->
      Telemetry.force_snapshot tel;
      Telemetry.close tel)
    cfg.telemetry;
  st

(* ------------------------------------------------- line-buffered reads *)

(* A nonblocking-capable line reader over a raw fd: select decides
   whether bytes are waiting, an internal buffer splits them into lines.
   (Mixing select with OCaml's buffered channels would lose the bytes
   already sitting in the channel buffer, hence the raw-fd version.) *)
module Line_reader = struct
  type t = {
    fd : Unix.file_descr;
    buf : Buffer.t;
    mutable lines : string list; (* complete lines, oldest first *)
    mutable closed : bool;
  }

  let create fd = { fd; buf = Buffer.create 4096; lines = []; closed = false }

  let pending_partial t = Buffer.length t.buf

  let split_buffer t =
    let s = Buffer.contents t.buf in
    match String.rindex_opt s '\n' with
    | None -> ()
    | Some last ->
        let complete = String.sub s 0 last in
        let rest = String.sub s (last + 1) (String.length s - last - 1) in
        Buffer.clear t.buf;
        Buffer.add_string t.buf rest;
        t.lines <-
          t.lines
          @ (String.split_on_char '\n' complete
            |> List.filter (fun l -> String.trim l <> ""))

  let read_chunk t =
    let bytes = Bytes.create 65536 in
    match Unix.read t.fd bytes 0 (Bytes.length bytes) with
    | 0 -> t.closed <- true
    | n ->
        Buffer.add_subbytes t.buf bytes 0 n;
        split_buffer t
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

  let readable ~timeout t =
    match Unix.select [ t.fd ] [] [] timeout with
    | [], _, _ -> false
    | _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

  (* [`Line l | `Nothing | `Eof], never blocking longer than [block]'s
     semantics: block=false polls, block=true waits for input or EOF. *)
  let rec next ~block t =
    match t.lines with
    | l :: rest ->
        t.lines <- rest;
        `Line l
    | [] ->
        if t.closed then `Eof
        else if readable ~timeout:(if block then -1. else 0.) t then begin
          read_chunk t;
          if t.lines = [] && not t.closed then
            if block then next ~block t else `Nothing
          else next ~block:false t
        end
        else `Nothing
end

(* --------------------------------------------------------- stdio daemon *)

let write_all fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd bytes !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let serve_stdio config =
  let t = create config in
  let reader = Line_reader.create Unix.stdin in
  let out = Buffer.create 65536 in
  let reply line =
    Buffer.add_string out line;
    Buffer.add_char out '\n'
  in
  let io =
    {
      read =
        (fun ~block ->
          match Line_reader.next ~block reader with
          | `Line l -> `Req (l, reply)
          | `Nothing -> `Nothing
          | `Eof -> `Eof);
      flush =
        (fun () ->
          if Buffer.length out > 0 then begin
            write_all Unix.stdout (Buffer.contents out);
            Buffer.clear out
          end);
    }
  in
  (* SIGTERM / SIGINT drain instead of dying mid-batch: the loop stops
     reading, finishes the queued work, and flushes the store snapshot —
     an interrupt no longer discards the warm cache accumulated since
     the last flush.  (The signal interrupts the blocking select, which
     surfaces as `Nothing; run_loop then notices should_stop.) *)
  let stop = ref false in
  let on_signal = Sys.Signal_handle (fun _ -> stop := true) in
  let old_int = (try Some (Sys.signal Sys.sigint on_signal) with Invalid_argument _ -> None) in
  let old_term = (try Some (Sys.signal Sys.sigterm on_signal) with Invalid_argument _ -> None) in
  Fun.protect
    ~finally:(fun () ->
      Option.iter (Sys.set_signal Sys.sigint) old_int;
      Option.iter (Sys.set_signal Sys.sigterm) old_term)
    (fun () -> run_loop ~should_stop:(fun () -> !stop) t io)

(* -------------------------------------------------------- socket daemon *)

(* A Unix-domain-socket front end: accept any number of clients, select
   across them, answer each request on the connection it arrived on.
   Responses are written synchronously (requests and responses are a few
   KB; a client that stops reading only stalls its own connection's
   replies).  A client that disconnects mid-request costs exactly its
   own partial line — logged, counted (serve.client_disconnects),
   dropped — and the remaining clients keep being served.  The daemon
   stops on SIGINT/SIGTERM (draining the queue and flushing the store
   first) or, with [?max_requests], after answering that many requests —
   the hook the smoke tests use. *)
let serve_socket ?max_requests config path =
  (match Sys.file_exists path with
  | true -> Sys.remove path
  | false -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 64;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let stop = ref false in
  let on_signal = Sys.Signal_handle (fun _ -> stop := true) in
  let old_int = Sys.signal Sys.sigint on_signal in
  let old_term = Sys.signal Sys.sigterm on_signal in
  let clients : (Unix.file_descr, Line_reader.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let answered = ref 0 in
  let t = create config in
  let drop fd =
    (match Hashtbl.find_opt clients fd with
    | Some r ->
        t.stats.disconnects <- t.stats.disconnects + 1;
        Obs.incr c_disconnects;
        let partial = Line_reader.pending_partial r in
        if partial > 0 then
          Printf.eprintf
            "bg serve: client disconnected mid-request; dropped %d-byte \
             partial line\n\
             %!"
            partial
    | None -> ());
    Hashtbl.remove clients fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let reply_to fd line =
    (try write_all fd (line ^ "\n")
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
     -> drop fd);
    incr answered;
    match max_requests with
    | Some n when !answered >= n -> stop := true
    | _ -> ()
  in
  (* Round-robin over client readers so one chatty client cannot starve
     the rest: take at most one buffered line per client per call. *)
  let read ~block =
    let take_buffered () =
      Hashtbl.fold
        (fun fd r acc ->
          match acc with
          | Some _ -> acc
          | None -> (
              match Line_reader.next ~block:false r with
              | `Line l -> Some (`Req (l, reply_to fd))
              | `Eof ->
                  drop fd;
                  None
              | `Nothing -> None))
        clients None
    in
    let rec go block =
      if !stop then `Eof
      else
        match take_buffered () with
        | Some req -> req
        | None -> (
            let fds = listener :: Hashtbl.fold (fun fd _ a -> fd :: a) clients [] in
            (* A finite timeout even when blocking, so signals and
               max_requests are noticed promptly. *)
            match Unix.select fds [] [] (if block then 0.25 else 0.) with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Nothing
            | [], _, _ -> if block then go block else `Nothing
            | ready, _, _ ->
                List.iter
                  (fun fd ->
                    if fd = listener then begin
                      let client, _ = Unix.accept listener in
                      Hashtbl.replace clients client
                        (Line_reader.create client)
                    end
                    else
                      match Hashtbl.find_opt clients fd with
                      | None -> ()
                      | Some r -> (
                          Line_reader.read_chunk r;
                          if r.Line_reader.closed && r.Line_reader.lines = []
                          then drop fd))
                  ready;
                go block)
    in
    go block
  in
  let io = { read; flush = (fun () -> ()) } in
  let finish () =
    Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) clients;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    (try Sys.remove path with Sys_error _ -> ());
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigterm old_term
  in
  Fun.protect ~finally:finish (fun () -> run_loop t io)
