(** Periodic metrics snapshotter for a running daemon: a ring-buffer
    JSONL file of registry deltas, plus Prometheus-style text rendering.

    [bg serve --telemetry FILE] threads {!maybe_snapshot} through its
    serve loop; every [interval_s] it appends one line:

    {v
{"type":"telemetry","seq":N,"t_s":F,"uptime_s":F,
 "counters":{"serve.served":{"value":N,"delta":N},...},
 "gauges":{"serve.queue_depth":F,...},
 "histograms":{"serve.latency_s":{"count":N,"count_delta":N,
   "sum":F,"sum_delta":F,"p50":F,"p99":F,
   "buckets_delta":{"41":N,...}},...}}
    v}

    Deltas are against the previous snapshot {e in this file}: the file
    is opened in append mode, so a supervised worker respawn continues
    the same ring, and a counter that went backwards (the respawned
    process restarts from zero) is treated as a fresh baseline
    ({!delta} clamps instead of going negative).  The file is a ring:
    once it exceeds twice [max_lines], it is rewritten in place keeping
    the newest [max_lines] lines, so a long-lived daemon's telemetry
    stays bounded.

    [bg top --telemetry FILE] tails the ring; [bg slo] replays it
    against an SLO spec; [bg top --prometheus] renders a live
    {!prometheus} scrape from the [metrics] wire op. *)

type t

val create : ?interval_s:float -> ?max_lines:int -> string -> t
(** Open (appending) the ring file.  Defaults: 1 second interval, 512
    lines.  Raises [Sys_error] if the path is not writable. *)

val interval_s : t -> float

val maybe_snapshot : ?now:float -> t -> unit
(** Append one snapshot line if at least [interval_s] has elapsed since
    the last one (the first call always snapshots).  Cheap when it is
    not yet due: one clock read and a compare. *)

val force_snapshot : ?now:float -> t -> unit
(** Append a snapshot line now (shutdown path, so the tail of a run is
    never lost). *)

val close : t -> unit

val delta : prev:int -> cur:int -> int
(** [cur - prev], except a counter that went backwards (process restart)
    yields [cur] — the new process's whole count is new activity. *)

val delta_f : prev:float -> cur:float -> float
(** Same clamp for float accumulators (histogram sums). *)

val prometheus : (string * Bg_prelude.Obs.metric_snapshot) list -> string
(** Render a registry snapshot ({!Bg_prelude.Obs.snapshot}) as
    Prometheus text exposition: [# TYPE] headers, names sanitized
    ([.] and [-] become [_]), histograms as cumulative
    [_bucket{le="..."}] series plus [_sum] / [_count]. *)
