(* The typed retrying client for `bg serve`.

   Retries are safe by construction: requests are idempotent (a repeat
   of the same line resolves to the same cache key, and at worst costs
   one extra cache hit), so the client may re-send on any failure —
   deadline overrun, torn line, corrupt payload, dead connection —
   without risk of double effects.  The policy half of this module is
   transport-free and drives Loadgen's pipe driver too; the conn half
   speaks the Unix-socket transport directly.

   Backoff is exponential with seeded "equal jitter" (Rng.backoff): a
   fleet of clients created from distinct seeds de-synchronizes its
   retry storms, while one client replays an identical schedule from its
   seed — determinism survives the failure path.

   The circuit breaker trips after breaker_threshold consecutive
   failures: further requests fail fast (no network, no wait) until
   breaker_cooldown_s has passed, then exactly one probe is let through
   (half-open); its outcome closes or re-opens the breaker.  This keeps
   a dead daemon from absorbing max_retries * backoff of latency per
   request — and gives a supervised restart a quiet window to come
   back. *)

module P = Protocol
module Obs = Core.Prelude.Obs
module Rng = Core.Prelude.Rng

type config = {
  deadline_s : float option;
  max_retries : int;
  backoff_base_s : float;
  backoff_cap_s : float;
  breaker_threshold : int;
  breaker_cooldown_s : float;
}

let default_config =
  {
    deadline_s = Some 5.;
    max_retries = 4;
    backoff_base_s = 0.02;
    backoff_cap_s = 1.;
    breaker_threshold = 8;
    breaker_cooldown_s = 0.5;
  }

type breaker_state = Closed | Open | Half_open

type t = {
  config : config;
  rng : Rng.t;
  mutable consecutive_failures : int;
  mutable state : breaker_state;
  mutable opened_at : float;
  mutable retries : int;
  mutable breaker_opens : int;
}

let c_retries = Obs.counter "client.retries"
let c_breaker_opens = Obs.counter "client.breaker_opens"
let c_corrupt = Obs.counter "client.corrupt_lines"
let c_deadline = Obs.counter "client.deadline_misses"

let create ?(config = default_config) ~seed () =
  if config.max_retries < 0 then
    invalid_arg "Client.create: max_retries must be >= 0";
  if not (config.backoff_base_s > 0.) then
    invalid_arg "Client.create: backoff_base_s must be positive";
  if config.backoff_cap_s < config.backoff_base_s then
    invalid_arg "Client.create: backoff_cap_s must be >= backoff_base_s";
  if config.breaker_threshold < 1 then
    invalid_arg "Client.create: breaker_threshold must be positive";
  (match config.deadline_s with
  | Some d when not (d > 0.) ->
      invalid_arg "Client.create: deadline_s must be positive"
  | _ -> ());
  {
    config;
    rng = Rng.create seed;
    consecutive_failures = 0;
    state = Closed;
    opened_at = neg_infinity;
    retries = 0;
    breaker_opens = 0;
  }

let config t = t.config
let retries t = t.retries
let breaker_opens t = t.breaker_opens
let breaker_state t = t.state

let backoff_s t ~attempt =
  Rng.backoff t.rng ~attempt ~base:t.config.backoff_base_s
    ~cap:t.config.backoff_cap_s

let count_retry t =
  t.retries <- t.retries + 1;
  Obs.incr c_retries

let record_success t =
  t.consecutive_failures <- 0;
  t.state <- Closed

let record_failure t ~now =
  t.consecutive_failures <- t.consecutive_failures + 1;
  match t.state with
  | Half_open ->
      (* The probe failed: back to fully open, cooldown restarts. *)
      t.state <- Open;
      t.opened_at <- now
  | Closed when t.consecutive_failures >= t.config.breaker_threshold ->
      t.state <- Open;
      t.opened_at <- now;
      t.breaker_opens <- t.breaker_opens + 1;
      Obs.incr c_breaker_opens
  | Closed | Open -> ()

(* May a request go out right now?  Closed: yes.  Open: only once the
   cooldown has elapsed, and that admission moves to half-open — exactly
   one probe carries the breaker's fate. *)
let admit t ~now =
  match t.state with
  | Closed | Half_open -> true
  | Open ->
      if now -. t.opened_at >= t.config.breaker_cooldown_s then begin
        t.state <- Half_open;
        true
      end
      else false

(* ------------------------------------------------------ the connection *)

let write_all fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd bytes !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

type conn = {
  policy : t;
  path : string;
  mutable fd : Unix.file_descr option;
  mutable reader : Server.Line_reader.t option;
  mutable corrupt_seen : int;
}

let connect policy path =
  { policy; path; fd = None; reader = None; corrupt_seen = 0 }

let disconnect conn =
  (match conn.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  conn.fd <- None;
  conn.reader <- None

let close = disconnect
let corrupt_seen conn = conn.corrupt_seen

let ensure_connected conn =
  match (conn.fd, conn.reader) with
  | Some fd, Some r -> Ok (fd, r)
  | _ -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX conn.path) with
      | () ->
          let r = Server.Line_reader.create fd in
          conn.fd <- Some fd;
          conn.reader <- Some r;
          Ok (fd, r)
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "connect %s: %s" conn.path
                   (Unix.error_message e)))

(* One wire attempt: send the line, read until a well-formed response
   with the request's id arrives or the deadline passes.  Corrupt lines
   (chaos-mangled JSON, checksum-garbled payloads) are counted and
   skipped — the caller never sees them — and responses for other ids
   (stale answers from an earlier timed-out attempt) are ignored. *)
let attempt conn req =
  match ensure_connected conn with
  | Error e -> Error e
  | Ok (fd, reader) -> (
      let line = P.request_to_string req ^ "\n" in
      match write_all fd line with
      | exception Unix.Unix_error (e, _, _) ->
          disconnect conn;
          Error ("write: " ^ Unix.error_message e)
      | () ->
          let deadline =
            Option.map (fun d -> Obs.now_s () +. d) conn.policy.config.deadline_s
          in
          let rec await () =
            match Server.Line_reader.next ~block:false reader with
            | `Line l -> (
                match P.response_of_string l with
                | Ok resp when P.response_id resp = req.P.id -> Ok resp
                | Ok _ -> await () (* stale id from a prior attempt *)
                | Error _ ->
                    conn.corrupt_seen <- conn.corrupt_seen + 1;
                    Obs.incr c_corrupt;
                    await ())
            | `Eof ->
                disconnect conn;
                Error "connection closed by server"
            | `Nothing -> (
                let timeout =
                  match deadline with
                  | None -> 0.25
                  | Some d -> Float.max 0. (d -. Obs.now_s ())
                in
                if timeout <= 0. && deadline <> None then begin
                  Obs.incr c_deadline;
                  (* The socket may still deliver this answer later; a
                     fresh attempt must not read it as its own (ids
                     match).  Reconnecting discards the stale stream. *)
                  disconnect conn;
                  Error "deadline exceeded"
                end
                else
                  match Unix.select [ fd ] [] [] timeout with
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ()
                  | [], _, _ -> await ()
                  | _ ->
                      Server.Line_reader.read_chunk reader;
                      await ())
          in
          await ())

(* The full policy loop: breaker gate, attempt, backoff, bounded
   retries.  Every outcome is typed; a request never hangs.

   Tracing: each logical request is one [client.request] root span;
   every wire attempt and every backoff sleep is a child span.  The wire
   carries the trace id plus the {e attempt} span's id as parent, so the
   server's [serve.request] subtree lands under the exact attempt that
   elicited it when trace files are merged — a retried request shows
   each attempt with its own server-side work (including the post-crash
   re-execution after a supervisor restart). *)
let trace_seq = Atomic.make 0

let request conn req =
  let policy = conn.policy in
  let trace_id =
    match req.P.trace with
    | Some t -> Some t.P.trace_id
    | None ->
        if Obs.tracing () then
          Some
            (Printf.sprintf "c%d-%s-%d" (Unix.getpid ()) req.P.id
               (Atomic.fetch_and_add trace_seq 1))
        else None
  in
  let trace_attrs =
    match trace_id with None -> [] | Some tid -> [ ("trace_id", Obs.S tid) ]
  in
  let one_attempt attempt_no =
    Obs.with_span "client.attempt"
      ~attrs:(("attempt", Obs.I attempt_no) :: trace_attrs)
      (fun () ->
        let wire =
          match trace_id with
          | None -> req
          | Some tid ->
              {
                req with
                P.trace =
                  Some
                    {
                      P.trace_id = tid;
                      parent_span = Obs.current_span_id ();
                    };
              }
        in
        match attempt conn wire with
        | Ok _ as r -> r
        | Error e ->
            Obs.add_span_attr "error" (Obs.S e);
            Error e)
  in
  Obs.with_span "client.request"
    ~attrs:(("id", Obs.S req.P.id) :: trace_attrs)
    (fun () ->
      let rec go attempt_no =
        let now = Obs.now_s () in
        if not (admit policy ~now) then begin
          Obs.add_span_attr "breaker" (Obs.S "open");
          Error "circuit breaker open"
        end
        else
          match one_attempt attempt_no with
          | Ok resp ->
              record_success policy;
              Ok resp
          | Error e ->
              record_failure policy ~now:(Obs.now_s ());
              if attempt_no >= policy.config.max_retries then
                Error
                  (Printf.sprintf "%s (gave up after %d attempts)" e
                     (attempt_no + 1))
              else begin
                count_retry policy;
                Obs.with_span "client.backoff"
                  ~attrs:(("attempt", Obs.I attempt_no) :: trace_attrs)
                  (fun () ->
                    Unix.sleepf (backoff_s policy ~attempt:attempt_no));
                go (attempt_no + 1)
              end
      in
      go 0)

let ping conn =
  request conn { P.id = "ping"; op = P.Ping; space = None; trace = None }

let metrics conn =
  request conn { P.id = "metrics"; op = P.Metrics; space = None; trace = None }
