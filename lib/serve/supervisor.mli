(** Daemon supervision for [bg serve --supervise]: respawn a crashed
    worker with capped exponential backoff.

    The worker inherits the supervisor's stdin/stdout {e directly}, so a
    restart is invisible at the transport level: request bytes the dead
    worker never consumed are still in the pipe for its successor; only
    the in-flight partial line and the unanswered batch are lost — which
    is precisely what a retrying {!Client} recovers, and the WAL-backed
    {!Store} preserves everything already journaled.

    Supervision ends on a clean exit (0) or a usage error (2); any other
    exit, or death by signal (chaos [SIGKILL], OOM), restarts after a
    capped exponential delay.  SIGINT/SIGTERM at the supervisor are
    forwarded to the worker, whose own handlers drain and flush.
    Restarts are counted under [supervisor.restarts]. *)

type outcome = {
  restarts : int;  (** how many times the worker was respawned *)
  final_status : Unix.process_status;  (** the last worker's exit *)
}

(** {2 Worker lineage}

    Supervisor-side counters persist {e across} respawns by riding the
    worker's environment: before each spawn the supervisor exports how
    many restarts preceded this incarnation, the wall-clock instant
    supervision began, and the summed uptime of every dead predecessor.
    A worker folds these into {!Server.lineage} so every [ping] reply
    carries the whole supervised history. *)

val lineage_env : string
(** [BG_SUPERVISE_RESTARTS] — respawns before this worker (0 for the
    first). *)

val started_env : string
(** [BG_SUPERVISE_STARTED_S] — [Unix.gettimeofday] when supervision
    began. *)

val prior_uptime_env : string
(** [BG_SUPERVISE_PRIOR_UPTIME_S] — seconds of worker uptime accumulated
    by dead predecessors. *)

val read_lineage : unit -> (int * float * float) option
(** [(restarts, supervisor_started_s, prior_uptime_s)] from the
    environment; [None] when not running under a supervisor.  Malformed
    values degrade to [0], never to an error — lineage is telemetry, not
    control. *)

val run :
  ?max_restarts:int ->
  ?backoff_base_s:float ->
  ?backoff_cap_s:float ->
  string array ->
  outcome
(** [run argv] spawns [argv] (program + args) with inherited stdio and
    supervises it.  Defaults: 16 restarts max, 50 ms base delay doubling
    to a 2 s cap.
    @raise Invalid_argument on empty [argv] or negative
    [max_restarts]. *)
