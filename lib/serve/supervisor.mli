(** Daemon supervision for [bg serve --supervise]: respawn a crashed
    worker with capped exponential backoff.

    The worker inherits the supervisor's stdin/stdout {e directly}, so a
    restart is invisible at the transport level: request bytes the dead
    worker never consumed are still in the pipe for its successor; only
    the in-flight partial line and the unanswered batch are lost — which
    is precisely what a retrying {!Client} recovers, and the WAL-backed
    {!Store} preserves everything already journaled.

    Supervision ends on a clean exit (0) or a usage error (2); any other
    exit, or death by signal (chaos [SIGKILL], OOM), restarts after a
    capped exponential delay.  SIGINT/SIGTERM at the supervisor are
    forwarded to the worker, whose own handlers drain and flush.
    Restarts are counted under [supervisor.restarts]. *)

type outcome = {
  restarts : int;  (** how many times the worker was respawned *)
  final_status : Unix.process_status;  (** the last worker's exit *)
}

val run :
  ?max_restarts:int ->
  ?backoff_base_s:float ->
  ?backoff_cap_s:float ->
  string array ->
  outcome
(** [run argv] spawns [argv] (program + args) with inherited stdio and
    supervises it.  Defaults: 16 restarts max, 50 ms base delay doubling
    to a 2 s cap.
    @raise Invalid_argument on empty [argv] or negative
    [max_restarts]. *)
