(* SLO objectives, sliding-window tracking, burn rates.

   Everything reduces to a bad-event budget.  A latency objective
   "p99 <= T" allows 1% of requests to exceed T; an error objective
   "err <= e" allows a fraction e to fail.  The burn rate is the
   observed bad fraction over the allowed fraction, so 1.0 is the
   boundary of compliance — the standard SRE framing, which makes
   window length a presentation choice rather than part of the
   objective.

   The tracker keeps the window's events in a queue (admission order =
   time order, since the server records responses as it sends them) and
   evicts from the front on report.  Lifetime totals are kept as plain
   sums per objective and never evicted. *)

module J = Obs_tools.Jsonl
module Obs = Core.Prelude.Obs

type objective =
  | Latency of { quantile : float; threshold_s : float }
  | Error_rate of float

type spec = objective list

let budget = function
  | Latency { quantile; _ } -> 1. -. quantile
  | Error_rate e -> e

(* %g keeps "p99<=0.05" short and round-trips through parse_spec. *)
let objective_name = function
  | Latency { quantile; threshold_s } ->
      let q = quantile *. 100. in
      let qs =
        if Float.is_integer q then Printf.sprintf "p%.0f" q
        else
          (* p99.9 -> "p999": digits after "p" read as 0.<digits> once
             longer than two. *)
          Printf.sprintf "p%s"
            (String.concat ""
               (String.split_on_char '.' (Printf.sprintf "%g" q)))
      in
      Printf.sprintf "%s<=%g" qs threshold_s
  | Error_rate e -> Printf.sprintf "err<=%g" e

let spec_to_string spec = String.concat "," (List.map objective_name spec)

let parse_one entry =
  let entry = String.trim entry in
  let key, value =
    match String.index_opt entry '<' with
    | None -> ("", "")
    | Some i ->
        let klen = i in
        let vstart =
          if i + 1 < String.length entry && entry.[i + 1] = '=' then i + 2
          else i + 1
        in
        ( String.trim (String.sub entry 0 klen),
          String.trim
            (String.sub entry vstart (String.length entry - vstart)) )
  in
  if key = "" || value = "" then
    Error (Printf.sprintf "slo: %S is not KEY<=VALUE" entry)
  else
    match key with
    | "err" -> (
        let pct = String.length value > 0 && value.[String.length value - 1] = '%' in
        let num =
          if pct then String.sub value 0 (String.length value - 1) else value
        in
        match float_of_string_opt num with
        | Some v when Float.is_finite v && v > 0. && (if pct then v <= 100. else v <= 1.) ->
            Ok (Error_rate (if pct then v /. 100. else v))
        | _ -> Error (Printf.sprintf "slo: err bound %S not in (0,1]" value))
    | _ when String.length key >= 2 && key.[0] = 'p' -> (
        let digits = String.sub key 1 (String.length key - 1) in
        match int_of_string_opt digits with
        | Some d when d > 0 && d < 100 && String.length digits <= 2 -> (
            let quantile = float_of_int d /. 100. in
            match float_of_string_opt value with
            | Some t when Float.is_finite t && t > 0. ->
                Ok (Latency { quantile; threshold_s = t })
            | _ ->
                Error
                  (Printf.sprintf "slo: latency bound %S not positive" value))
        | Some d when String.length digits = 3 && d > 100 && d < 1000 -> (
            (* p999 = 0.999, p995 = 0.995 *)
            let quantile = float_of_int d /. 1000. in
            match float_of_string_opt value with
            | Some t when Float.is_finite t && t > 0. ->
                Ok (Latency { quantile; threshold_s = t })
            | _ ->
                Error
                  (Printf.sprintf "slo: latency bound %S not positive" value))
        | _ -> Error (Printf.sprintf "slo: bad quantile key %S" key))
    | _ ->
        Error
          (Printf.sprintf "slo: unknown key %S (want pNN or err)" key)

let parse_spec s =
  let entries =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  if entries = [] then Error "slo: empty spec"
  else
    List.fold_left
      (fun acc entry ->
        match (acc, parse_one entry) with
        | Error e, _ -> Error e
        | _, Error e -> Error e
        | Ok objs, Ok o -> Ok (o :: objs))
      (Ok []) entries
    |> Result.map List.rev

(* ------------------------------------------------------------- tracking *)

type event = { at : float; latency_s : float; ok : bool }

type status = {
  objective : objective;
  window_total : int;
  window_bad : int;
  window_burn : float;
  lifetime_total : int;
  lifetime_bad : int;
  lifetime_burn : float;
  healthy : bool;
}

type t = {
  slo_spec : spec;
  win_s : float;
  events : event Queue.t;
  life_bad : int array; (* per objective, same order as slo_spec *)
  mutable life_total : int;
}

let create ?(window_s = 60.) spec =
  {
    slo_spec = spec;
    win_s = window_s;
    events = Queue.create ();
    life_bad = Array.make (List.length spec) 0;
    life_total = 0;
  }

let window_s t = t.win_s
let spec t = t.slo_spec

let is_bad objective ev =
  match objective with
  | Latency { threshold_s; _ } -> (not ev.ok) || ev.latency_s > threshold_s
  | Error_rate _ -> not ev.ok

let record t ~now_s ~latency_s ~ok =
  let ev = { at = now_s; latency_s; ok } in
  Queue.push ev t.events;
  t.life_total <- t.life_total + 1;
  List.iteri
    (fun i o -> if is_bad o ev then t.life_bad.(i) <- t.life_bad.(i) + 1)
    t.slo_spec

let evict t ~now_s =
  let cutoff = now_s -. t.win_s in
  while
    (not (Queue.is_empty t.events)) && (Queue.peek t.events).at < cutoff
  do
    ignore (Queue.pop t.events)
  done

let burn ~bad ~total ~budget =
  if total = 0 then 0.
  else float_of_int bad /. float_of_int total /. budget

let report t ~now_s =
  evict t ~now_s;
  let window_total = Queue.length t.events in
  List.mapi
    (fun i o ->
      let window_bad =
        Queue.fold (fun n ev -> if is_bad o ev then n + 1 else n) 0 t.events
      in
      let b = budget o in
      let window_burn = burn ~bad:window_bad ~total:window_total ~budget:b in
      let lifetime_burn =
        burn ~bad:t.life_bad.(i) ~total:t.life_total ~budget:b
      in
      {
        objective = o;
        window_total;
        window_bad;
        window_burn;
        lifetime_total = t.life_total;
        lifetime_bad = t.life_bad.(i);
        lifetime_burn;
        healthy = window_burn <= 1.;
      })
    t.slo_spec

let violated statuses = List.exists (fun s -> not s.healthy) statuses

let eval_samples spec samples =
  let total = List.length samples in
  List.map
    (fun o ->
      let bad =
        List.fold_left
          (fun n (latency_s, ok) ->
            if is_bad o { at = 0.; latency_s; ok } then n + 1 else n)
          0 samples
      in
      let b = burn ~bad ~total ~budget:(budget o) in
      {
        objective = o;
        window_total = total;
        window_bad = bad;
        window_burn = b;
        lifetime_total = total;
        lifetime_bad = bad;
        lifetime_burn = b;
        healthy = b <= 1.;
      })
    spec

let bad_latency_of_buckets ~threshold_s buckets =
  let threshold_bucket = Obs.bucket_of threshold_s in
  List.fold_left
    (fun n (i, count) -> if i > threshold_bucket then n + count else n)
    0 buckets

let status_to_json s =
  J.Obj
    [
      ("objective", J.Str (objective_name s.objective));
      ( "window",
        J.Obj
          [ ("total", J.Num (float_of_int s.window_total));
            ("bad", J.Num (float_of_int s.window_bad));
            ("burn", J.Num s.window_burn) ] );
      ( "lifetime",
        J.Obj
          [ ("total", J.Num (float_of_int s.lifetime_total));
            ("bad", J.Num (float_of_int s.lifetime_bad));
            ("burn", J.Num s.lifetime_burn) ] );
      ("healthy", J.Bool s.healthy);
    ]
