(* `bg loadgen` — the production-shaped workload replayer for bg serve.

   A workload is generated, not recorded: from one integer seed it
   expands to a pool of distinct decay spaces and a request trace over
   them with zipf-skewed repetition (a few hot spaces dominate, a long
   tail appears once or twice — the shape that makes a shared cache
   earn its keep).  Generation is a pure function of the workload
   record: the same seed yields byte-identical request lines, and
   therefore identical space digests server-side, on every run — which
   is exactly what lets a second run against a restarted daemon hit the
   persistent store.

   Two drivers replay a trace:
   - in-process, against a Server.t, for tests and the perf gate;
   - over pipes against a spawned `bg serve` daemon, closed-loop with a
     bounded in-flight window (and an optional open-loop target rate),
     for the end-to-end benchmark.  The pipe driver multiplexes reads
     and writes with select and keeps writes nonblocking, so a busy
     daemon can never deadlock the generator.

   Both drivers take an optional Client policy and then exercise the
   full retry path: per-request deadlines, seeded backoff, bounded
   re-sends (safe — requests are idempotent by cache key), breaker
   pauses, and first-answer-wins dedup (a late answer to a timed-out
   attempt counts as a duplicate, never a second result).  Responses
   that fail to parse — chaos-torn or corrupted lines — are counted and
   retried, so no corrupt payload ever reaches the report as an answer.

   Both report answered/ok/rejected/error counts, cache-outcome tallies,
   retry/duplicate/corrupt/gave-up tallies, throughput and exact
   (sorted-sample) p50/p99 latencies. *)

module P = Protocol
module J = Obs_tools.Jsonl
module D = Core.Decay.Decay_space
module Spaces = Core.Decay.Spaces
module Rng = Core.Prelude.Rng
module Obs = Core.Prelude.Obs

(* ---------------------------------------------------------------- zipf *)

(* Cumulative distribution of the zipf(s) law on ranks 1..n:
   P(rank = k) proportional to k^-s. *)
let zipf_cdf ~s ~n =
  if n < 1 then invalid_arg "zipf_cdf: n must be positive";
  let cdf = Array.make n 0. in
  let total = ref 0. in
  for k = 0 to n - 1 do
    total := !total +. (float_of_int (k + 1) ** -.s);
    cdf.(k) <- !total
  done;
  Array.map (fun c -> c /. !total) cdf

(* Draw a rank (0-based) by binary search over the cdf. *)
let zipf_pick rng cdf =
  let u = Rng.float rng 1. in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(* ------------------------------------------------------------ workload *)

type workload = {
  seed : int;
  requests : int;
  spaces : int;  (** distinct decay spaces in the pool *)
  nodes : int;  (** nodes per space *)
  zipf_s : float;  (** skew: 0 = uniform, larger = hotter head *)
}

let default_workload =
  { seed = 1; requests = 2000; spaces = 200; nodes = 24; zipf_s = 1.1 }

let space_matrix space =
  let n = D.n space in
  Array.init n (fun i -> Array.init n (fun j -> D.decay space i j))

(* The op mix: mostly the headline sweep (zeta), the rest spread over
   the other analyses.  Estimate's design is derived from the space
   rank, not drawn, so repeats of a hot space repeat the whole cache
   key. *)
let pick_op rng ~rank ~nodes =
  let u = Rng.float rng 1. in
  if u < 0.60 then P.Zeta
  else if u < 0.80 then P.Phi
  else if u < 0.90 then P.Gamma 4.
  else if u < 0.95 then P.Summarize
  else
    P.Estimate
      { nodes = max 3 (min 16 nodes); replicates = 4; seed = rank }

let generate w =
  if w.requests < 1 then invalid_arg "Loadgen.generate: requests < 1";
  if w.spaces < 1 then invalid_arg "Loadgen.generate: spaces < 1";
  if w.nodes < 3 then invalid_arg "Loadgen.generate: nodes < 3";
  if not (Float.is_finite w.zipf_s) || w.zipf_s < 0. then
    invalid_arg "Loadgen.generate: zipf_s must be finite and >= 0";
  let rng = Rng.create w.seed in
  let space_rng = Rng.split rng in
  (* One split per space decouples draw counts: space k is the same
     bytes whatever the trace around it does. *)
  let pool =
    Array.init w.spaces (fun _k ->
        let r = Rng.split space_rng in
        let pts = Spaces.random_points r ~n:w.nodes ~side:100. in
        space_matrix (Spaces.perturbed r ~alpha:3. ~sigma:0.8 pts))
  in
  let cdf = zipf_cdf ~s:w.zipf_s ~n:w.spaces in
  let trace_rng = Rng.split rng in
  List.init w.requests (fun i ->
      let rank = zipf_pick trace_rng cdf in
      let op = pick_op trace_rng ~rank ~nodes:w.nodes in
      {
        P.id = Printf.sprintf "r%06d" i;
        op;
        space =
          Some (P.Inline (Printf.sprintf "lg-%d-%d" w.seed rank, pool.(rank)));
        (* Deterministic trace id: the same seed names the same request
           the same way on every run, so a p99 exemplar from one report
           can be looked up in any other run's trace files. *)
        trace =
          Some
            {
              P.trace_id = Printf.sprintf "t%d-r%06d" w.seed i;
              parent_span = 0;
            };
      })

(* --------------------------------------------------- driver-side tracing *)

(* The drivers run their own event loop rather than Client.request, so
   they emit spans after the fact: each request's root [client.request]
   span id is preallocated before the first send and rides the wire as
   [parent_span], and the span itself is emitted (backdated) when the
   request resolves.  The daemon's serve.request subtree then re-parents
   under this exact span when the trace files are merged. *)
type tracing = {
  spans : (string, string * int * string) Hashtbl.t;
      (* id -> (trace_id, root span id, re-rendered request line) *)
  mutable emitted : int;
}

let trace_prep requests =
  if not (Obs.tracing ()) then None
  else begin
    let spans = Hashtbl.create 256 in
    List.iter
      (fun r ->
        let tid =
          match r.P.trace with
          | Some t -> t.P.trace_id
          | None -> "lg-" ^ r.P.id
        in
        let span = Obs.alloc_span_id () in
        let line =
          P.request_to_string
            { r with P.trace = Some { P.trace_id = tid; parent_span = span } }
        in
        Hashtbl.replace spans r.P.id (tid, span, line))
      requests;
    Some { spans; emitted = 0 }
  end

let traced_line tr id line =
  match tr with
  | None -> line
  | Some t -> (
      match Hashtbl.find_opt t.spans id with
      | Some (_, _, l) -> l
      | None -> line)

(* Close a request's root span.  Called at most once per id (answered,
   or given up); ids that never resolve before the driver exits simply
   have no root span — the server subtree still names the trace id. *)
let trace_finish tr ~id ~start_s ~dur_s ~attempts ~ok =
  match tr with
  | None -> ()
  | Some t -> (
      match Hashtbl.find_opt t.spans id with
      | None -> ()
      | Some (tid, span, _) ->
          Hashtbl.remove t.spans id;
          t.emitted <- t.emitted + 1;
          ignore
            (Obs.emit_span_at
               ~attrs:
                 [ ("trace_id", Obs.S tid); ("id", Obs.S id);
                   ("attempts", Obs.I attempts) ]
               ~parent:0 ~id:span ~ok ~name:"client.request" ~start_s ~dur_s
               ()))

(* -------------------------------------------------------------- report *)

type report = {
  sent : int;
  answered : int;
  ok : int;
  rejected : int;
  errors : int;
  hits : int;
  misses : int;
  coalesced : int;
  degraded : int;
  retries : int;
  duplicates : int;
  corrupt_lines : int;
  gave_up : int;
  wall_s : float;
  throughput_rps : float;
  mean_s : float;
  p50_s : float;
  p99_s : float;
  exemplars : (string * float) list;
      (* trace ids of the slowest-decile answers, worst first *)
  slo_samples : (float * bool) list;
      (* (latency_s, ok) per resolved request; gave-ups score as
         (infinity, false) so no objective can be gamed by abandonment *)
}

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    sorted.(min (n - 1)
              (int_of_float (Float.round (q *. float_of_int (n - 1)))))

(* Fold a list of (response, latency) into a report. *)
let build_report ?(retries = 0) ?(duplicates = 0) ?(corrupt_lines = 0)
    ?(gave_up = 0) ~sent ~wall_s answers =
  let ok = ref 0 and rejected = ref 0 and errors = ref 0 in
  let hits = ref 0 and misses = ref 0 and coalesced = ref 0 in
  let degraded = ref 0 in
  let lat = ref [] in
  let traced = ref [] in
  let samples = ref [] in
  List.iter
    (fun (resp, latency) ->
      lat := latency :: !lat;
      (match P.response_trace resp with
      | Some t -> traced := (t.P.trace_id, latency) :: !traced
      | None -> ());
      (match resp with
      | P.Done { cache; degraded = d; _ } ->
          incr ok;
          if d then incr degraded;
          (match cache with
          | P.Hit -> incr hits
          | P.Miss -> incr misses
          | P.Coalesced -> incr coalesced)
      | P.Rejected _ -> incr rejected
      | P.Failed _ -> incr errors);
      samples := (latency, match resp with P.Done _ -> true | _ -> false)
                 :: !samples)
    answers;
  for _ = 1 to gave_up do
    samples := (Float.infinity, false) :: !samples
  done;
  let lats = Array.of_list !lat in
  Array.sort compare lats;
  let answered = Array.length lats in
  let mean_s =
    if answered = 0 then 0.
    else Array.fold_left ( +. ) 0. lats /. float_of_int answered
  in
  (* Exemplars: trace ids of the slowest-decile answers (at least one
     when anything was traced), worst first, capped — enough to jump
     into `bg trace report --id` without drowning the report. *)
  let exemplars =
    let arr = Array.of_list !traced in
    Array.sort (fun (_, a) (_, b) -> compare b a) arr;
    let n = Array.length arr in
    let keep = min 8 (max (min n 1) (n / 10)) in
    Array.to_list (Array.sub arr 0 keep)
  in
  {
    sent;
    answered;
    ok = !ok;
    rejected = !rejected;
    errors = !errors;
    hits = !hits;
    misses = !misses;
    coalesced = !coalesced;
    degraded = !degraded;
    retries;
    duplicates;
    corrupt_lines;
    gave_up;
    wall_s;
    throughput_rps =
      (if wall_s > 0. then float_of_int answered /. wall_s else 0.);
    mean_s;
    p50_s = quantile lats 0.50;
    p99_s = quantile lats 0.99;
    exemplars;
    slo_samples = List.rev !samples;
  }

let hit_rate r = if r.ok = 0 then 0. else float_of_int r.hits /. float_of_int r.ok

let report_to_json r =
  J.Obj
    [ ("sent", J.Num (float_of_int r.sent));
      ("answered", J.Num (float_of_int r.answered));
      ("ok", J.Num (float_of_int r.ok));
      ("rejected", J.Num (float_of_int r.rejected));
      ("errors", J.Num (float_of_int r.errors));
      ("hits", J.Num (float_of_int r.hits));
      ("misses", J.Num (float_of_int r.misses));
      ("coalesced", J.Num (float_of_int r.coalesced));
      ("degraded", J.Num (float_of_int r.degraded));
      ("retries", J.Num (float_of_int r.retries));
      ("duplicates", J.Num (float_of_int r.duplicates));
      ("corrupt_lines", J.Num (float_of_int r.corrupt_lines));
      ("gave_up", J.Num (float_of_int r.gave_up));
      ("hit_rate", J.Num (hit_rate r));
      ("wall_s", J.Num r.wall_s);
      ("throughput_rps", J.Num r.throughput_rps);
      ("mean_s", J.Num r.mean_s);
      ("p50_s", J.Num r.p50_s);
      ("p99_s", J.Num r.p99_s);
      ( "exemplars",
        J.Arr
          (List.map
             (fun (tid, lat) ->
               J.Obj [ ("trace_id", J.Str tid); ("latency_s", J.Num lat) ])
             r.exemplars) ) ]

let pp_report fmt r =
  Format.fprintf fmt
    "sent %d  answered %d  ok %d  rejected %d  errors %d@\n\
     cache: %d hit / %d miss / %d coalesced  (hit rate %.3f)@\n\
     resilience: %d degraded  %d retries  %d duplicates  %d corrupt  %d \
     gave up@\n\
     wall %.3fs  throughput %.1f req/s  latency mean %.2gs  p50 %.2gs  \
     p99 %.2gs"
    r.sent r.answered r.ok r.rejected r.errors r.hits r.misses r.coalesced
    (hit_rate r) r.degraded r.retries r.duplicates r.corrupt_lines r.gave_up
    r.wall_s r.throughput_rps r.mean_s r.p50_s r.p99_s;
  match r.exemplars with
  | [] -> ()
  | ex ->
      Format.fprintf fmt "@\nslowest traces:";
      List.iter
        (fun (tid, lat) -> Format.fprintf fmt " %s(%.2gs)" tid lat)
        ex

(* ---------------------------------------------------- in-process driver *)

(* The in-process driver feeds run_loop through the io record and
   recovers chaos-dropped/-corrupted replies at batch boundaries: the
   flush callback fires after every batch's replies, and provided the
   in-flight window never exceeds the engine's batch_size, every request
   sent before a flush was answered by it — so an id still unanswered at
   flush lost its reply to chaos, and is re-sent (bounded by the client
   policy) or given up.  First answer wins; merged torn lines fail to
   parse and count as corrupt. *)
let drive_inproc ?(window = 32) ?client server requests =
  if window < 1 then invalid_arg "drive_inproc: window < 1";
  let max_retries =
    match client with None -> 0 | Some c -> (Client.config c).Client.max_retries
  in
  let tr = trace_prep requests in
  let remaining =
    ref
      (List.map
         (fun r -> (r.P.id, traced_line tr r.P.id (P.request_to_string r)))
         requests)
  in
  let lines : (string, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (id, line) -> Hashtbl.replace lines id line) !remaining;
  let inflight : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let attempts : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let answered : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let sent = ref 0 in
  let retries = ref 0 and duplicates = ref 0 in
  let corrupt = ref 0 and gave_up = ref 0 in
  let answers = ref [] in
  let started = Obs.now_s () in
  let handle_line resp_line =
    match P.response_of_string resp_line with
    | Error _ -> incr corrupt
    | Ok resp -> (
        let id = P.response_id resp in
        if Hashtbl.mem answered id then incr duplicates
        else
          match Hashtbl.find_opt inflight id with
          | None ->
              (* Not in flight: either a late answer to an id we gave up
                 on, or a corrupted payload whose mangled id still
                 parses.  Never an answer either way. *)
              if Hashtbl.mem lines id then incr duplicates else incr corrupt
          | Some t0 ->
              Hashtbl.remove inflight id;
              Hashtbl.add answered id ();
              Option.iter Client.record_success client;
              let latency = Obs.now_s () -. t0 in
              trace_finish tr ~id ~start_s:t0 ~dur_s:latency
                ~attempts:(try Hashtbl.find attempts id with Not_found -> 1)
                ~ok:(match resp with P.Done _ -> true | _ -> false);
              answers := (resp, latency) :: !answers)
  in
  let read ~block:_ =
    match !remaining with
    | [] -> if Hashtbl.length inflight = 0 then `Eof else `Nothing
    | (id, line) :: rest ->
        if Hashtbl.length inflight >= window then `Nothing
        else begin
          remaining := rest;
          let n = (try Hashtbl.find attempts id with Not_found -> 0) + 1 in
          Hashtbl.replace attempts id n;
          if n = 1 then begin
            incr sent;
            Hashtbl.replace inflight id (Obs.now_s ())
          end
          (* a retry keeps its first-send timestamp for latency *)
          else if not (Hashtbl.mem inflight id) then
            Hashtbl.replace inflight id (Obs.now_s ());
          `Req (line, handle_line)
        end
  in
  (* Batch boundary: every in-flight id predates the batch just replied
     to (window <= batch_size), so survivors lost their reply line. *)
  let flush () =
    let lost = Hashtbl.fold (fun id _ acc -> id :: acc) inflight [] in
    List.iter
      (fun id ->
        let n = try Hashtbl.find attempts id with Not_found -> 1 in
        Option.iter (fun c -> Client.record_failure c ~now:(Obs.now_s ())) client;
        if n > max_retries then begin
          (match Hashtbl.find_opt inflight id with
          | Some t0 ->
              trace_finish tr ~id ~start_s:t0
                ~dur_s:(Obs.now_s () -. t0)
                ~attempts:n ~ok:false
          | None -> ());
          Hashtbl.remove inflight id;
          incr gave_up
        end
        else begin
          incr retries;
          Option.iter Client.count_retry client;
          remaining := (id, Hashtbl.find lines id) :: !remaining
        end)
      lost
  in
  let _stats = Server.run_loop server { Server.read; flush } in
  build_report ~retries:!retries ~duplicates:!duplicates
    ~corrupt_lines:!corrupt ~gave_up:!gave_up ~sent:!sent
    ~wall_s:(Obs.now_s () -. started) !answers

(* ------------------------------------------------------- pipe driver *)

let write_nonblock fd buf =
  (* Push as much of [buf] down the pipe as it will take right now. *)
  let s = Buffer.contents buf in
  let len = String.length s in
  if len > 0 then begin
    match Unix.write_substring fd s 0 len with
    | n ->
        Buffer.clear buf;
        if n < len then Buffer.add_substring buf s n (len - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  end

(* Drive an external daemon speaking the protocol on [req_w]/[resp_r]
   (both pipe fds; [req_w] is closed when nothing more will ever be sent,
   so the daemon sees EOF and drains).  Closed-loop: at most [window]
   requests in flight; [rate] adds an open-loop cap (requests issued no
   faster than [rate]/s even when the window has room).  With [client],
   attempts that outlive the policy deadline are re-sent after jittered
   backoff (up to max_retries), the breaker pauses issuing after
   consecutive failures, and late answers to timed-out attempts are
   deduplicated — each request contributes at most one answer. *)
let drive_fds ?(window = 32) ?rate ?client ~req_w ~resp_r requests =
  if window < 1 then invalid_arg "drive: window < 1";
  (match rate with
  | Some r when r <= 0. -> invalid_arg "drive: rate must be positive"
  | _ -> ());
  Unix.set_nonblock req_w;
  let reader = Server.Line_reader.create resp_r in
  let deadline = Option.bind client (fun c -> (Client.config c).Client.deadline_s) in
  let max_retries =
    match client with None -> 0 | Some c -> (Client.config c).Client.max_retries
  in
  let tr = trace_prep requests in
  let pending =
    ref
      (List.map
         (fun r -> (r.P.id, traced_line tr r.P.id (P.request_to_string r)))
         requests)
  in
  let lines : (string, string) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun (id, line) -> Hashtbl.replace lines id line) !pending;
  let out = Buffer.create 65536 in
  let attempt_at : (string, float) Hashtbl.t = Hashtbl.create 256 in
  let first_at : (string, float) Hashtbl.t = Hashtbl.create 256 in
  let attempts : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let retry_at : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let answered_ids : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let sent = ref 0 in
  let retries = ref 0 and duplicates = ref 0 in
  let corrupt = ref 0 and gave_up = ref 0 in
  let answers = ref [] in
  let closed_req = ref false in
  let started = Obs.now_s () in
  let admit now =
    match client with None -> true | Some c -> Client.admit c ~now
  in
  let issue_allowed now =
    match rate with
    | None -> true
    | Some r -> float_of_int !sent <= (now -. started) *. r
  in
  let enqueue_line id now =
    Hashtbl.replace attempt_at id now;
    if not (Hashtbl.mem first_at id) then Hashtbl.replace first_at id now;
    Hashtbl.replace attempts id
      ((try Hashtbl.find attempts id with Not_found -> 0) + 1);
    Buffer.add_string out (Hashtbl.find lines id);
    Buffer.add_char out '\n'
  in
  let issue_some () =
    let now = Obs.now_s () in
    let inflight () = Hashtbl.length attempt_at in
    if admit now then begin
      (* Due retries go out first — they have been waiting longest. *)
      let due =
        Hashtbl.fold
          (fun id when_ acc -> if when_ <= now then id :: acc else acc)
          retry_at []
      in
      List.iter
        (fun id ->
          if inflight () < window && Buffer.length out < 1 lsl 20 then begin
            Hashtbl.remove retry_at id;
            incr retries;
            Option.iter Client.count_retry client;
            enqueue_line id now
          end)
        due;
      let continue = ref true in
      while
        !continue && !pending <> [] && inflight () < window
        && Buffer.length out < 1 lsl 20
        && issue_allowed now
      do
        match !pending with
        | [] -> continue := false
        | (id, _) :: rest ->
            pending := rest;
            incr sent;
            enqueue_line id now
      done
    end
  in
  (* Attempts past the deadline: failure for the breaker, then either a
     backoff-scheduled re-send or (retry budget spent) a give-up. *)
  let check_deadlines () =
    match (deadline, client) with
    | Some d, Some c ->
        let now = Obs.now_s () in
        let expired =
          Hashtbl.fold
            (fun id t0 acc -> if now -. t0 > d then id :: acc else acc)
            attempt_at []
        in
        List.iter
          (fun id ->
            Hashtbl.remove attempt_at id;
            Client.record_failure c ~now;
            let n = try Hashtbl.find attempts id with Not_found -> 1 in
            if n > max_retries then begin
              (match Hashtbl.find_opt first_at id with
              | Some t0 ->
                  trace_finish tr ~id ~start_s:t0 ~dur_s:(now -. t0)
                    ~attempts:n ~ok:false
              | None -> ());
              incr gave_up
            end
            else
              Hashtbl.replace retry_at id
                (now +. Client.backoff_s c ~attempt:(n - 1)))
          expired
    | _ -> ()
  in
  let handle_line line =
    match P.response_of_string line with
    | Error _ -> incr corrupt
    | Ok resp -> (
        let id = P.response_id resp in
        if Hashtbl.mem answered_ids id then incr duplicates
        else
          match Hashtbl.find_opt first_at id with
          | None ->
              (* Parses, but we never sent this id: a corrupted payload
                 whose mangling survived the JSON parser.  Never an
                 answer — the real request's deadline will retry it. *)
              incr corrupt
          | Some t0 ->
              Hashtbl.add answered_ids id ();
              let latency = Obs.now_s () -. t0 in
              Hashtbl.remove attempt_at id;
              Hashtbl.remove retry_at id;
              Option.iter Client.record_success client;
              trace_finish tr ~id ~start_s:t0 ~dur_s:latency
                ~attempts:(try Hashtbl.find attempts id with Not_found -> 1)
                ~ok:(match resp with P.Done _ -> true | _ -> false);
              answers := (resp, latency) :: !answers)
  in
  (* Nothing more will ever be sent once the trace is drained, no retry
     is scheduled, and (when a deadline exists) nothing in flight can
     still expire into a retry. *)
  let done_sending () =
    !pending = [] && Buffer.length out = 0
    && Hashtbl.length retry_at = 0
    && (deadline = None || Hashtbl.length attempt_at = 0)
  in
  let eof = ref false in
  while not !eof do
    check_deadlines ();
    issue_some ();
    if (not !closed_req) && done_sending () then begin
      closed_req := true;
      (try Unix.close req_w with Unix.Unix_error _ -> ())
    end;
    let want_write =
      (not !closed_req) && Buffer.length out > 0
    in
    let writes = if want_write then [ req_w ] else [] in
    (* Tighter ticks while a deadline or scheduled retry is pending, so
       expiry latency stays small against sub-second deadlines. *)
    let tick =
      if
        Hashtbl.length retry_at > 0
        || (deadline <> None && Hashtbl.length attempt_at > 0)
      then 0.05
      else 0.25
    in
    (match Unix.select [ resp_r ] writes [] tick with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        if writable <> [] then write_nonblock req_w out;
        if readable <> [] then begin
          Server.Line_reader.read_chunk reader;
          let continue = ref true in
          while !continue do
            match Server.Line_reader.next ~block:false reader with
            | `Line l -> handle_line l
            | `Nothing -> continue := false
            | `Eof ->
                continue := false;
                eof := true
          done
        end)
  done;
  if not !closed_req then (try Unix.close req_w with Unix.Unix_error _ -> ());
  build_report ~retries:!retries ~duplicates:!duplicates
    ~corrupt_lines:!corrupt ~gave_up:!gave_up ~sent:!sent
    ~wall_s:(Obs.now_s () -. started) !answers

(* Spawn [argv] (a `bg serve` command line), drive the trace through its
   stdin/stdout, reap it, and report.  The child's stderr passes
   through. *)
let drive_subprocess ?window ?rate ?client argv requests =
  (* cloexec on every pipe end: the child must NOT inherit our copies of
     req_w / resp_r, or closing req_w here would never deliver its EOF
     (the daemon itself would hold the write end open).  create_process
     dup2s req_r / resp_w onto the child's stdin / stdout, which clears
     cloexec on those. *)
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let pid = Unix.create_process argv.(0) argv req_r resp_w Unix.stderr in
  Unix.close req_r;
  Unix.close resp_w;
  let report =
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close resp_r with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid))
      (fun () -> drive_fds ?window ?rate ?client ~req_w ~resp_r requests)
  in
  report
