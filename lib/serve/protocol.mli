(** The JSONL wire schema of [bg serve] — typed requests and responses.

    One request per line in, one response per line out.  A request names
    an analysis [op], carries its decay space inline (matrix rows or CSV
    text) or by file path, and is answered by exactly one response:
    [ok] with the result, [rejected] under admission control (overload
    is a first-class, immediate answer — never a hung connection), or
    [error] for malformed or invalid input.

    Request line shapes:
    {v
{"id":"r1","op":"zeta","space":{"name":"s","matrix":[[0,1.5],[1.2,0]]}}
{"id":"r2","op":"gamma","r":4,"space":{"csv":"# name: s\n0,2\n2,0"}}
{"id":"r3","op":"estimate","nodes":32,"replicates":6,"seed":7,
 "space":{"file":"big.bgd"}}
{"id":"hp","op":"ping"}
    v}

    Response line shapes:
    {v
{"id":"r1","status":"ok","op":"zeta","cache":"hit|miss|coalesced",
 "queue_wait_s":F,"batch":N,"elapsed_s":F,"result":{...}}
{"id":"r4","status":"ok","op":"zeta","cache":"miss",...,
 "degraded":true,"result":{"point":...,"lo":...,"hi":...}}
{"id":"r9","status":"rejected","reason":"queue full (256 pending)"}
{"id":"rX","status":"error","reason":"space: need one of matrix/csv/file"}
    v}

    [degraded:true] marks an answer produced by the
    {!Bg_decay.Estimators} tier instead of an exact sweep — the server
    was above its load watermark, and the result carries the estimator's
    confidence interval.  The flag is omitted when false, so
    pre-resilience response lines parse unchanged.

    Floats are serialized with [%.17g] ({!Obs_tools.Jsonl}), so a
    workload generated from a seed produces bit-identical request lines
    — and therefore identical space digests — on every run, which is
    what makes the persistent cache hit across daemon restarts. *)

type op =
  | Zeta
  | Phi
  | Gamma of float  (** the separation [r > 0] *)
  | Summarize
  | Estimate of { nodes : int; replicates : int; seed : int }
      (** stratified {!Bg_decay.Estimators.zeta} — for spaces too large
          for the exact sweep *)
  | Ping
      (** health probe: answered at admission (never queued) with
          uptime, queue depth, hit rate, degraded-mode and SLO status,
          plus supervisor lineage (restarts, cumulative uptime) *)
  | Metrics
      (** live telemetry scrape: answered at admission with a full
          snapshot of the server's metrics registry (counters, gauges,
          histogram buckets) — what [bg top] polls *)

type space_spec =
  | Inline of string * float array array  (** name, decay rows *)
  | Csv of string  (** CSV text, as accepted by {!Bg_decay.Decay_io.of_csv} *)
  | File of string  (** path to a CSV or raw-binary matrix on the server *)

type trace_context = { trace_id : string; parent_span : int }
(** Cross-process trace identity.  [trace_id] names the logical request
    across every process it touches; [parent_span] is the sender's span
    id in its own trace file (0 = unknown), which lets
    {!Obs_tools.Trace.merge} re-parent the server's spans under the
    client's.  Serialized as top-level [trace_id] / [parent_span] wire
    fields, omitted when absent, so pre-tracing lines parse unchanged. *)

type request = {
  id : string;
  op : op;
  space : space_spec option;
  trace : trace_context option;
}
(** [space] is [None] only for {!Ping} / {!Metrics}; every analysis op
    requires one. *)

type cache_outcome =
  | Hit  (** answered from the shared store (memory or disk) *)
  | Miss  (** computed by this request *)
  | Coalesced
      (** computed once by a concurrent duplicate in the same batch *)

type response =
  | Done of {
      id : string;
      op_name : string;
      result : Obs_tools.Jsonl.t;
      cache : cache_outcome;
      queue_wait_s : float;  (** admission to batch start *)
      batch : int;  (** id of the batch that served it *)
      elapsed_s : float;  (** admission to response *)
      degraded : bool;
          (** answered by the estimator tier under load; the result
              carries its confidence interval *)
      trace : trace_context option;  (** echo of the request's context *)
    }
  | Rejected of {
      id : string;
      reason : string;
      trace : trace_context option;
    }  (** shed by admission control; resubmit later *)
  | Failed of { id : string; reason : string; trace : trace_context option }

val op_name : op -> string
(** ["zeta"], ["phi"], ["gamma"], ["summarize"], ["estimate"],
    ["ping"], ["metrics"]. *)

val op_key : op -> string
(** The op's contribution to the cache key: includes every parameter
    that changes the result (gamma's [r], the estimator design), so
    distinct questions about one space never collide in the store. *)

val cache_outcome_name : cache_outcome -> string
val response_id : response -> string

val response_trace : response -> trace_context option
(** The trace context echoed on any response variant. *)

val request_to_string : request -> string
(** One JSONL line (no trailing newline). *)

val request_of_string : string -> (request, string) result
(** Parse one request line; [Error] carries a one-line reason suitable
    for a [Failed] response. *)

val request_to_json : request -> Obs_tools.Jsonl.t
val request_of_json : Obs_tools.Jsonl.t -> (request, string) result

val response_to_string : response -> string
val response_of_string : string -> (response, string) result
val response_to_json : response -> Obs_tools.Jsonl.t
val response_of_json : Obs_tools.Jsonl.t -> (response, string) result
