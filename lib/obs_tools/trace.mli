(** Offline analysis of {!Bg_prelude.Obs} JSONL traces.

    Backs the [bg trace report|flame|diff] subcommands: a trace file is
    read back into a span forest (spans opened inside parallel workers
    are roots of their own domain) and aggregated per span {e kind}
    (name), rendered as folded stacks / speedscope JSON, or diffed
    against another trace.

    Self time is [dur - min(dur, sum of children dur)], so
    [self + child = total] holds {e exactly} per span and per kind.
    Quantiles are estimated from the same log2 bucketing the live
    metrics registry uses ({!Bg_prelude.Obs.bucket_of}), at the
    geometric midpoint of the selected bucket, so offline p50/p99 are
    comparable with online histogram flushes. *)

type span = {
  id : int;
  parent : int; (* 0 for roots *)
  domain : int;
  name : string;
  start_s : float;
  dur_s : float; (* clamped non-negative on load *)
  ok : bool;
  attrs : (string * Jsonl.t) list;
}

(** {1 Loading} *)

val load : string -> span list
(** Parse a JSONL trace file and keep its span events, in file order
    (children precede parents — spans are emitted on close).  Raises
    {!Jsonl.Bad} on malformed JSON and [Sys_error] on an unreadable
    file. *)

val load_events : string -> Jsonl.t list
(** Every event of the file (spans, counters, gauges, histograms). *)

val spans : Jsonl.t list -> span list
(** The span events among [events]; non-span lines are ignored. *)

val attr_num : span -> string -> float option
(** Numeric attribute by name. *)

val attr_str : span -> string -> string option
(** String attribute by name. *)

val alloc_bytes : span -> float option
(** The ["gc.alloc_bytes"] profiling attribute, when the trace was
    recorded under [--profile]. *)

val trace_id : span -> string option
(** The ["trace_id"] attribute — the logical-request tag the serving
    stack propagates across processes. *)

val kinds : span list -> string list
(** The distinct span names, sorted — [bg trace diff] refuses two traces
    whose kind sets are disjoint (nothing to compare). *)

(** {1 Cross-process merge} *)

val merge : span list list -> span list
(** Merge per-process trace files (client, daemon incarnations,
    supervisor) into one causal forest.  Every file's process-local span
    ids are remapped into one namespace; then each span carrying both a
    [trace_id] and a [parent_span] attribute (a server span whose cause
    lives in another process — the wire carried the client span's id)
    is re-parented under the span with the same [trace_id], {e no}
    [parent_span] attribute, and the matching original id.  The wire
    parent overrides process-local nesting (a server groups its request
    spans under batch spans; the causal edge wins).  A remote child
    whose target file is absent keeps its local parent: the merge
    degrades, never drops spans. *)

val filter_trace : id:string -> span list -> span list
(** The spans of one logical request: every span whose [trace_id]
    attribute equals [id], plus all their descendants (server-side
    queue-wait and kernel children carry no tag — they follow their
    parent).  Meaningful after {!merge}. *)

val tree_table : ?title:string -> span list -> Bg_prelude.Table.t
(** The forest rendered as an indented causal tree in start order, with
    starts relative to the earliest span — the [bg trace report --id]
    view. *)

(** {1 Per-kind aggregation} *)

type kind_stats = {
  kind : string;
  count : int;
  errors : int; (* spans with ok:false *)
  total_s : float;
  kself_s : float; (* total minus time inside linked children *)
  kchild_s : float; (* kself_s + kchild_s = total_s exactly *)
  alloc_b : float; (* summed gc.alloc_bytes; 0 without profiling *)
  p50_s : float; (* log2-bucket estimates of the duration quantiles *)
  p99_s : float;
  max_s : float;
}

val aggregate : span list -> kind_stats list
(** One row per span name, sorted by total time descending. *)

val report_table : ?title:string -> span list -> Bg_prelude.Table.t
(** {!aggregate} rendered with human-scale units. *)

val critical_path : span list -> span list
(** The chain of heaviest children under the slowest [experiment] span
    (or the slowest root when the trace has no experiment spans), from
    that top span down to a leaf.  Empty only for an empty trace. *)

val critical_path_table : span list -> Bg_prelude.Table.t

(** {1 Flame output} *)

val folded : span list -> (string * int) list
(** flamegraph.pl folded stacks: [("root;child;leaf", self_us)] with
    one entry per distinct name path, self time in integer microseconds,
    sorted by stack.  Spans sharing a name path merge (flamegraph
    semantics). *)

val folded_to_string : span list -> string
(** One ["stack value\n"] line per entry of {!folded}. *)

val speedscope : ?name:string -> span list -> string
(** The trace as a speedscope evented-profile JSON document (one
    profile per domain, frames shared).  Event timestamps are clamped
    into their parent's window and ordered after elder siblings, so the
    output satisfies speedscope's schema even on a clock-jittery
    trace. *)

(** {1 Trace diff} *)

type diff_row = {
  d_kind : string;
  old_count : int;
  new_count : int;
  old_total_s : float;
  new_total_s : float;
  delta_s : float; (* new - old *)
  delta_pct : float; (* infinity when the kind only exists in [new] *)
}

val diff_rows : old_spans:span list -> new_spans:span list -> diff_row list
(** Per-kind deltas over the union of kinds, worst regressions first.
    Diffing a trace against itself yields all-zero deltas. *)

val diff_table :
  old_spans:span list -> new_spans:span list -> Bg_prelude.Table.t
