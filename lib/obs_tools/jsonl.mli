(** Minimal dependency-free JSON / JSONL reader and writer.

    The trace lines written by {!Bg_prelude.Obs}, the bench baselines
    and the speedscope profiles emitted by {!Trace} are all small JSON;
    this module parses and serializes them without an external library.
    It handles full JSON (arrays, nesting, string escapes); numbers are
    parsed as [float] (JSON's own number model).  Non-BMP [\u] escapes
    and surrogate pairs are out of scope: code points [>= 0x80] decode
    to ['?'] (the traces only ever escape ASCII control characters). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string
(** Raised by {!parse} and {!parse_lines} on malformed input, with a
    message naming the byte offset. *)

(** {1 Parsing} *)

val parse : string -> t
(** Parse one complete JSON value; trailing non-whitespace raises
    {!Bad}. *)

val parse_lines : string -> t list
(** JSONL: one JSON value per non-empty line. *)

val read_file : string -> string
(** The file's contents ([In_channel.input_all]); combine with
    {!parse_lines} to load a trace. *)

(** {1 Emission} *)

val to_string : t -> string
(** Compact (single-line) serialization.  Integral {!Num} values print
    without a decimal point; non-finite floats are emitted as strings
    (["infinity"], ["nan"]) mirroring the {!Bg_prelude.Obs} convention,
    so output always reparses. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an {!Obj}; [None] on missing field or non-object. *)

val str : t -> string option
val num : t -> float option
val bool_ : t -> bool option

val mem_str : string -> t -> string option
(** [mem_str k v = Option.bind (member k v) str]; likewise the two
    below. *)

val mem_num : string -> t -> float option
val mem_bool : string -> t -> bool option
