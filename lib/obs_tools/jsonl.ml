(* A minimal dependency-free JSON / JSONL reader and writer.

   The toolchain ships no JSON library, and the formats this repo deals
   in are deliberately small — the [Bg_prelude.Obs] trace lines, the
   bench baselines, speedscope profiles — so a ~100-line
   recursive-descent parser plus a direct serializer keep the trace
   tooling (and the test suite, which uses this same module)
   dependency-free.  It still parses full JSON — arrays, nesting,
   escapes — so round-trip tests exercise a real parser, not a
   regexp. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> fail "expected %c at %d, got %c" c st.pos c'
  | None -> fail "expected %c at %d, got end of input" c st.pos

let parse_literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail "bad literal at %d" st.pos

let parse_string_raw st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' ->
        if st.pos >= String.length st.s then fail "dangling escape";
        let e = st.s.[st.pos] in
        st.pos <- st.pos + 1;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            if st.pos + 4 > String.length st.s then fail "bad \\u escape";
            let hex = String.sub st.s st.pos 4 in
            st.pos <- st.pos + 4;
            let code = int_of_string ("0x" ^ hex) in
            (* The traces only escape control characters, all < 0x80;
               other code points are passed through as '?' rather than
               implementing UTF-8 encoding nobody writes. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_char b '?'
        | c -> fail "bad escape \\%c" c);
        go ()
    | c -> Buffer.add_char b c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail "expected number at %d" start;
  match float_of_string_opt (String.sub st.s start (st.pos - start)) with
  | Some f -> Num f
  | None -> fail "bad number at %d" start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_string_raw st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        expect st '}';
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string_raw st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              expect st ',';
              members ((k, v) :: acc)
          | Some '}' ->
              expect st '}';
              List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } at %d" st.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        expect st ']';
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              expect st ',';
              elems (v :: acc)
          | Some ']' ->
              expect st ']';
              List.rev (v :: acc)
          | _ -> fail "expected , or ] at %d" st.pos
        in
        Arr (elems [])
      end
  | Some _ -> parse_number st

let parse s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail "trailing garbage at %d" st.pos;
  v

(* One JSON value per non-empty line. *)
let parse_lines text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map parse

let read_file path = In_channel.with_open_text path In_channel.input_all

(* ----------------------------------------------------------- emission *)

let buf_add_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_num b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* Integral values print as integers: ids, counts, bucket indices
       must not grow a ".000000" suffix on the way out. *)
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else if Float.is_finite f then
    (* %.17g round-trips every double. *)
    Buffer.add_string b (Printf.sprintf "%.17g" f)
  else
    (* JSON has no inf/nan literals; mirror Obs's convention of emitting
       them as strings so the output always reparses. *)
    buf_add_string b (Printf.sprintf "%h" f)

let rec buf_add b = function
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Num f -> buf_add_num b f
  | Str s -> buf_add_string b s
  | Arr vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          buf_add b v)
        vs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          buf_add_string b k;
          Buffer.add_char b ':';
          buf_add b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  buf_add b v;
  Buffer.contents b

(* --------------------------------------------------------- accessors *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let bool_ = function Bool b -> Some b | _ -> None
let mem_str k v = Option.bind (member k v) str
let mem_num k v = Option.bind (member k v) num
let mem_bool k v = Option.bind (member k v) bool_
