(* Offline analysis of Bg_prelude.Obs JSONL traces.

   A trace is read back into a span forest (children carry a [parent]
   id; spans opened inside Parallel workers are roots of their own
   domain), then served three ways:

   - [aggregate]/[report_table]: one row per span *kind* (name) with
     count, total / self / child wall time, allocation (when the trace
     was recorded under [Obs.set_profile true]) and p50/p99 estimated
     from the same log2 bucketing the live metrics registry uses — so
     offline quantiles and online histogram flushes are comparable.
   - [folded]/[speedscope]: flamegraph.pl folded stacks and speedscope
     evented-profile JSON (one profile per domain).
   - [diff_rows]/[diff_table]: per-kind regression deltas between two
     traces.

   Self time is defined as [dur - min(dur, sum of children dur)], so
   self + child = total holds exactly per span (and therefore per kind);
   clock jitter between closely spaced gettimeofday readings can only
   shrink self time, never produce negative rows. *)

module Table = Bg_prelude.Table
module Obs = Bg_prelude.Obs

type span = {
  id : int;
  parent : int;
  domain : int;
  name : string;
  start_s : float;
  dur_s : float;
  ok : bool;
  attrs : (string * Jsonl.t) list;
}

let span_of_event e =
  match Jsonl.mem_str "type" e with
  | Some "span" ->
      let num k = Jsonl.mem_num k e in
      let int_field k = Option.map int_of_float (num k) in
      (match (int_field "id", num "start_s", num "dur_s") with
      | Some id, Some start_s, Some dur_s ->
          Some
            {
              id;
              parent = Option.value ~default:0 (int_field "parent");
              domain = Option.value ~default:0 (int_field "domain");
              name = Option.value ~default:"?" (Jsonl.mem_str "name" e);
              start_s;
              dur_s = Float.max 0. dur_s;
              ok = Option.value ~default:true (Jsonl.mem_bool "ok" e);
              attrs =
                (match Jsonl.member "attrs" e with
                | Some (Jsonl.Obj kvs) -> kvs
                | _ -> []);
            }
      | _ -> None)
  | _ -> None

let spans events = List.filter_map span_of_event events
let load_events path = Jsonl.parse_lines (Jsonl.read_file path)
let load path = spans (load_events path)

let attr_num sp k = Option.bind (List.assoc_opt k sp.attrs) Jsonl.num

let attr_str sp k =
  match List.assoc_opt k sp.attrs with Some (Jsonl.Str s) -> Some s | _ -> None

let alloc_bytes sp = attr_num sp "gc.alloc_bytes"
let trace_id sp = attr_str sp "trace_id"

let kinds spans =
  List.sort_uniq String.compare (List.map (fun sp -> sp.name) spans)

(* ------------------------------------------------------- multi-file merge *)

(* Merge per-process trace files into one causal forest.  Span ids are
   process-local (each process numbers from 1), so every file's ids are
   first remapped into one dense namespace; local parent links follow
   their file's map.  Then the cross-process links close: a span
   carrying BOTH a [trace_id] and a [parent_span] attribute is a remote
   child (a server span whose parent lives in the client's file — the
   wire carried the client span's id as [parent_span]); its parent is
   the span with the same [trace_id] attribute, NO [parent_span]
   attribute, and the matching {e original} id.  Client-side spans
   (client.request / client.attempt) are exactly the link targets: they
   name the trace but were not caused remotely.  An unmatched remote
   child (its client file wasn't given) stays a root — the merge
   degrades, never drops. *)
let merge files =
  let next = ref 1 in
  let targets : (string * int, int) Hashtbl.t = Hashtbl.create 256 in
  let merged =
    List.concat_map
      (fun spans ->
        (* One file may hold several process incarnations appended back
           to back (a supervised worker reopens its trace file with
           --trace-append), each restarting span ids from 1.  Within one
           process every span id closes exactly once, so seeing an id
           close a second time marks an incarnation boundary: reset the
           remap there, or incarnation 2's parent links would resolve
           into incarnation 1's spans.  Children close before parents,
           so a parent referenced before its own line gets its merged id
           allocated at first reference. *)
        let map = Hashtbl.create 256 in
        let emitted = Hashtbl.create 256 in
        let remap id =
          match Hashtbl.find_opt map id with
          | Some nid -> nid
          | None ->
              let nid = !next in
              incr next;
              Hashtbl.replace map id nid;
              nid
        in
        List.map
          (fun sp ->
            if Hashtbl.mem emitted sp.id then begin
              Hashtbl.reset map;
              Hashtbl.reset emitted
            end;
            Hashtbl.replace emitted sp.id ();
            let nid = remap sp.id in
            (match (trace_id sp, attr_num sp "parent_span") with
            | Some tid, None -> Hashtbl.replace targets (tid, sp.id) nid
            | _ -> ());
            let nparent = if sp.parent = 0 then 0 else remap sp.parent in
            { sp with id = nid; parent = nparent })
          spans)
      files
  in
  (* The wire-propagated parent is the causal edge; a process-local
     parent (the server's batch grouping around its request spans) is
     incidental nesting and loses to it.  An absent target (client file
     not given) keeps the local parent: degrade, never orphan. *)
  List.map
    (fun sp ->
      match (trace_id sp, attr_num sp "parent_span") with
      | Some tid, Some ps -> (
          match Hashtbl.find_opt targets (tid, int_of_float ps) with
          | Some p when p <> sp.id -> { sp with parent = p }
          | _ -> sp)
      | _ -> sp)
    merged

(* ------------------------------------------------------------- indexing *)

type index = {
  by_id : (int, span) Hashtbl.t;
  children : (int, span list) Hashtbl.t; (* in ascending start order *)
  roots : span list; (* parent 0 or parent missing from the trace *)
}

let index spans =
  let by_id = Hashtbl.create 256 in
  List.iter (fun sp -> Hashtbl.replace by_id sp.id sp) spans;
  let children = Hashtbl.create 256 in
  let roots = ref [] in
  List.iter
    (fun sp ->
      if sp.parent <> 0 && Hashtbl.mem by_id sp.parent then
        Hashtbl.replace children sp.parent
          (sp :: Option.value ~default:[] (Hashtbl.find_opt children sp.parent))
      else roots := sp :: !roots)
    spans;
  let by_start l =
    List.sort (fun a b -> Float.compare a.start_s b.start_s) l
  in
  Hashtbl.iter
    (fun k l -> Hashtbl.replace children k (by_start l))
    (Hashtbl.copy children);
  { by_id; children; roots = by_start !roots }

let children_of idx sp =
  Option.value ~default:[] (Hashtbl.find_opt idx.children sp.id)

(* Truncated traces can contain a span whose parent id was never
   emitted; such spans are treated as roots by [index], so the child sum
   below only ever sees fully linked children. *)
let child_s idx sp =
  let sum =
    List.fold_left (fun acc c -> acc +. c.dur_s) 0. (children_of idx sp)
  in
  Float.min sum sp.dur_s

let self_s idx sp = sp.dur_s -. child_s idx sp

(* Keep one logical request's causal tree: every span tagged with the
   trace id, plus all descendants (a server's queue-wait/kernel children
   carry no tag of their own — they follow their parent). *)
let filter_trace ~id:tid spans =
  let idx = index spans in
  let keep : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec mark sp =
    if not (Hashtbl.mem keep sp.id) then begin
      Hashtbl.replace keep sp.id ();
      List.iter mark (children_of idx sp)
    end
  in
  List.iter (fun sp -> if trace_id sp = Some tid then mark sp) spans;
  List.filter (fun sp -> Hashtbl.mem keep sp.id) spans

(* ----------------------------------------------------------- aggregate *)

type kind_stats = {
  kind : string;
  count : int;
  errors : int;
  total_s : float;
  kself_s : float;
  kchild_s : float;
  alloc_b : float; (* 0 when the trace carries no profiling attrs *)
  p50_s : float;
  p99_s : float;
  max_s : float;
}

(* Quantiles from the same log2 bucketing as the live registry: the
   smallest bucket whose cumulative count reaches the rank, estimated at
   the bucket's geometric midpoint (sqrt 2 times its lower edge). *)
let bucket_estimate i =
  if i <= 0 then 0.
  else if i >= Obs.num_buckets - 1 then Obs.bucket_lower_bound i
  else Obs.bucket_lower_bound i *. Float.sqrt 2.

let quantile_of_buckets buckets count q =
  if count = 0 then 0.
  else begin
    let rank = int_of_float (Float.round (q *. float_of_int (count - 1))) in
    let i = ref 0 and seen = ref 0 in
    (try
       for b = 0 to Array.length buckets - 1 do
         seen := !seen + buckets.(b);
         if !seen > rank then begin
           i := b;
           raise Exit
         end
       done
     with Exit -> ());
    bucket_estimate !i
  end

type acc = {
  mutable a_count : int;
  mutable a_errors : int;
  mutable a_total : float;
  mutable a_self : float;
  mutable a_alloc : float;
  mutable a_max : float;
  a_buckets : int array;
}

let aggregate spans =
  let idx = index spans in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      let a =
        match Hashtbl.find_opt tbl sp.name with
        | Some a -> a
        | None ->
            let a =
              {
                a_count = 0;
                a_errors = 0;
                a_total = 0.;
                a_self = 0.;
                a_alloc = 0.;
                a_max = 0.;
                a_buckets = Array.make Obs.num_buckets 0;
              }
            in
            Hashtbl.replace tbl sp.name a;
            a
      in
      a.a_count <- a.a_count + 1;
      if not sp.ok then a.a_errors <- a.a_errors + 1;
      a.a_total <- a.a_total +. sp.dur_s;
      a.a_self <- a.a_self +. self_s idx sp;
      a.a_alloc <- a.a_alloc +. Option.value ~default:0. (alloc_bytes sp);
      if sp.dur_s > a.a_max then a.a_max <- sp.dur_s;
      let b = Obs.bucket_of sp.dur_s in
      a.a_buckets.(b) <- a.a_buckets.(b) + 1)
    spans;
  Hashtbl.fold
    (fun kind a out ->
      {
        kind;
        count = a.a_count;
        errors = a.a_errors;
        total_s = a.a_total;
        kself_s = a.a_self;
        kchild_s = a.a_total -. a.a_self;
        alloc_b = a.a_alloc;
        p50_s = quantile_of_buckets a.a_buckets a.a_count 0.50;
        p99_s = quantile_of_buckets a.a_buckets a.a_count 0.99;
        max_s = a.a_max;
      }
      :: out)
    tbl []
  |> List.sort (fun a b ->
         match Float.compare b.total_s a.total_s with
         | 0 -> String.compare a.kind b.kind
         | c -> c)

(* Human units: pick the scale once per value. *)
let fmt_s s =
  if s = 0. then "0"
  else if Float.abs s >= 1. then Printf.sprintf "%.3f s" s
  else if Float.abs s >= 1e-3 then Printf.sprintf "%.3f ms" (s *. 1e3)
  else Printf.sprintf "%.1f us" (s *. 1e6)

let fmt_bytes b =
  if b = 0. then "-"
  else if Float.abs b >= 1048576. then
    Printf.sprintf "%.1f MiB" (b /. 1048576.)
  else if Float.abs b >= 1024. then Printf.sprintf "%.1f KiB" (b /. 1024.)
  else Printf.sprintf "%.0f B" b

let report_table ?(title = "trace report") spans =
  let t =
    Table.create ~title
      [ "span"; "count"; "total"; "self"; "child"; "p50"; "p99"; "max";
        "alloc"; "errors" ]
  in
  List.iter
    (fun k ->
      Table.add_row t
        [ Table.S k.kind; Table.I k.count; Table.S (fmt_s k.total_s);
          Table.S (fmt_s k.kself_s); Table.S (fmt_s k.kchild_s);
          Table.S (fmt_s k.p50_s); Table.S (fmt_s k.p99_s);
          Table.S (fmt_s k.max_s); Table.S (fmt_bytes k.alloc_b);
          Table.I k.errors ])
    (aggregate spans);
  t

(* ---------------------------------------------------------- causal tree *)

(* One row per span, children indented under parents in start order —
   the per-request view `bg trace report --id` renders after a merge.
   Starts are relative to the earliest span so a tree reads as a
   timeline, not as wall-clock epochs. *)
let tree_table ?(title = "causal tree") spans =
  let idx = index spans in
  let t0 =
    List.fold_left (fun m sp -> Float.min m sp.start_s) infinity spans
  in
  let t = Table.create ~title [ "span"; "start"; "dur"; "detail" ] in
  let detail sp =
    let field k =
      match List.assoc_opt k sp.attrs with
      | Some (Jsonl.Str s) -> [ Printf.sprintf "%s=%s" k s ]
      | Some (Jsonl.Num n) ->
          [ (if Float.is_integer n then Printf.sprintf "%s=%d" k (int_of_float n)
             else Printf.sprintf "%s=%g" k n) ]
      | _ -> []
    in
    String.concat "  "
      ((if sp.ok then [] else [ "FAILED" ])
      @ field "op" @ field "attempt" @ field "attempts" @ field "error")
  in
  let rec emit depth sp =
    Table.add_row t
      [ Table.S (String.make (2 * depth) ' ' ^ sp.name);
        Table.S (fmt_s (sp.start_s -. t0)); Table.S (fmt_s sp.dur_s);
        Table.S (detail sp) ];
    List.iter (emit (depth + 1)) (children_of idx sp)
  in
  List.iter (emit 0) idx.roots;
  t

(* -------------------------------------------------------- critical path *)

(* The chain of heaviest children under the slowest [experiment] span
   (or, in a trace without experiments, the slowest root): "where did
   the worst run spend its time". *)
let critical_path spans =
  let idx = index spans in
  let slowest = function
    | [] -> None
    | l ->
        Some
          (List.fold_left
             (fun best sp -> if sp.dur_s > best.dur_s then sp else best)
             (List.hd l) l)
  in
  let top =
    match
      slowest (List.filter (fun sp -> sp.name = "experiment") spans)
    with
    | Some sp -> Some sp
    | None -> slowest idx.roots
  in
  let rec descend sp acc =
    match slowest (children_of idx sp) with
    | None -> List.rev (sp :: acc)
    | Some c -> descend c (sp :: acc)
  in
  match top with None -> [] | Some sp -> descend sp []

let critical_path_table spans =
  let path = critical_path spans in
  let idx = index spans in
  let total = match path with [] -> 0. | sp :: _ -> sp.dur_s in
  let t =
    Table.create ~title:"critical path (slowest experiment, heaviest child chain)"
      [ "span"; "total"; "self"; "% of top" ]
  in
  List.iteri
    (fun depth sp ->
      let pct =
        if total > 0. then 100. *. sp.dur_s /. total
        else if depth = 0 then 100.
        else 0.
      in
      Table.add_row t
        [ Table.S (String.make (2 * depth) ' ' ^ sp.name);
          Table.S (fmt_s sp.dur_s); Table.S (fmt_s (self_s idx sp));
          Table.F2 pct ])
    path;
  t

(* -------------------------------------------------------- folded stacks *)

(* flamegraph.pl folded format: "root;child;leaf <value>" with one line
   per distinct stack, value = self time in integer microseconds.
   Stacks are keyed by the name path, so two spans with the same
   ancestry merge — exactly flamegraph semantics. *)
let folded spans =
  let idx = index spans in
  let path_memo = Hashtbl.create 256 in
  (* Fuel bounds the parent climb: a corrupt trace with a parent cycle
     degrades into a truncated stack instead of divergence. *)
  let rec path fuel sp =
    match Hashtbl.find_opt path_memo sp.id with
    | Some p -> p
    | None ->
        let p =
          match Hashtbl.find_opt idx.by_id sp.parent with
          | Some parent when fuel > 0 && sp.parent <> 0 && parent.id <> sp.id
            ->
              path (fuel - 1) parent ^ ";" ^ sp.name
          | _ -> sp.name
        in
        Hashtbl.replace path_memo sp.id p;
        p
  in
  let path sp = path (List.length spans) sp in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      let key = path sp in
      let us = int_of_float (Float.round (self_s idx sp *. 1e6)) in
      Hashtbl.replace tbl key
        (us + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    spans;
  Hashtbl.fold (fun k v out -> (k, v) :: out) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let folded_to_string spans =
  folded spans
  |> List.map (fun (stack, us) -> Printf.sprintf "%s %d\n" stack us)
  |> String.concat ""

(* ----------------------------------------------------------- speedscope *)

(* Evented speedscope profiles, one per domain (each domain's spans form
   an independent forest).  Open/close events must be properly nested
   with nondecreasing timestamps, which raw gettimeofday readings do not
   strictly guarantee; a cursor clamps every event into its parent's
   window and after its elder siblings, so the output always validates
   even on a jittery trace. *)
let speedscope ?(name = "bg trace") spans =
  let idx = index spans in
  let frame_index = Hashtbl.create 64 in
  let frames = ref [] in
  let frame_of n =
    match Hashtbl.find_opt frame_index n with
    | Some i -> i
    | None ->
        let i = Hashtbl.length frame_index in
        Hashtbl.replace frame_index n i;
        frames := n :: !frames;
        i
  in
  let domains =
    List.sort_uniq compare (List.map (fun sp -> sp.domain) idx.roots)
  in
  let profiles =
    List.map
      (fun dom ->
        let roots = List.filter (fun sp -> sp.domain = dom) idx.roots in
        let t0 =
          List.fold_left (fun m sp -> Float.min m sp.start_s) infinity roots
        in
        let events = ref [] in
        let push ty frame at =
          events :=
            Jsonl.Obj
              [ ("type", Jsonl.Str ty); ("frame", Jsonl.Num (float_of_int frame));
                ("at", Jsonl.Num at) ]
            :: !events
        in
        let rec emit sp ~lo ~hi =
          let open_at = Float.min hi (Float.max lo (sp.start_s -. t0)) in
          let close_at =
            Float.min hi (Float.max open_at (sp.start_s +. sp.dur_s -. t0))
          in
          let f = frame_of sp.name in
          push "O" f open_at;
          let cursor =
            List.fold_left
              (fun cur c -> emit c ~lo:cur ~hi:close_at)
              open_at (children_of idx sp)
          in
          ignore cursor;
          push "C" f close_at;
          close_at
        in
        let end_value =
          List.fold_left (fun cur sp -> emit sp ~lo:cur ~hi:infinity) 0. roots
        in
        Jsonl.Obj
          [ ("type", Jsonl.Str "evented");
            ("name", Jsonl.Str (Printf.sprintf "domain %d" dom));
            ("unit", Jsonl.Str "seconds"); ("startValue", Jsonl.Num 0.);
            ("endValue", Jsonl.Num end_value);
            ("events", Jsonl.Arr (List.rev !events)) ])
      domains
  in
  Jsonl.to_string
    (Jsonl.Obj
       [ ( "$schema",
           Jsonl.Str "https://www.speedscope.app/file-format-schema.json" );
         ("name", Jsonl.Str name); ("exporter", Jsonl.Str "bg trace flame");
         ("activeProfileIndex", Jsonl.Num 0.);
         ( "shared",
           Jsonl.Obj
             [ ( "frames",
                 Jsonl.Arr
                   (List.rev_map
                      (fun n -> Jsonl.Obj [ ("name", Jsonl.Str n) ])
                      !frames) ) ] );
         ("profiles", Jsonl.Arr profiles) ])

(* ----------------------------------------------------------------- diff *)

type diff_row = {
  d_kind : string;
  old_count : int;
  new_count : int;
  old_total_s : float;
  new_total_s : float;
  delta_s : float;
  delta_pct : float; (* infinity when the kind is new, 0 when both absent *)
}

let diff_rows ~old_spans ~new_spans =
  let olds = aggregate old_spans and news = aggregate new_spans in
  let kinds =
    List.sort_uniq String.compare
      (List.map (fun k -> k.kind) olds @ List.map (fun k -> k.kind) news)
  in
  let find l kind = List.find_opt (fun k -> k.kind = kind) l in
  List.map
    (fun kind ->
      let o = find olds kind and n = find news kind in
      let oc = match o with Some k -> k.count | None -> 0 in
      let nc = match n with Some k -> k.count | None -> 0 in
      let ot = match o with Some k -> k.total_s | None -> 0. in
      let nt = match n with Some k -> k.total_s | None -> 0. in
      let delta = nt -. ot in
      {
        d_kind = kind;
        old_count = oc;
        new_count = nc;
        old_total_s = ot;
        new_total_s = nt;
        delta_s = delta;
        delta_pct =
          (if ot > 0. then 100. *. delta /. ot
           else if nt > 0. then infinity
           else 0.);
      })
    kinds
  (* Worst regressions first. *)
  |> List.sort (fun a b ->
         match Float.compare b.delta_s a.delta_s with
         | 0 -> String.compare a.d_kind b.d_kind
         | c -> c)

let diff_table ~old_spans ~new_spans =
  let t =
    Table.create ~title:"trace diff (new - old, worst regressions first)"
      [ "span"; "count old"; "count new"; "total old"; "total new"; "delta";
        "delta %" ]
  in
  List.iter
    (fun r ->
      let pct =
        if Float.is_finite r.delta_pct then
          Printf.sprintf "%+.1f%%" r.delta_pct
        else "new"
      in
      Table.add_row t
        [ Table.S r.d_kind; Table.I r.old_count; Table.I r.new_count;
          Table.S (fmt_s r.old_total_s); Table.S (fmt_s r.new_total_s);
          Table.S (fmt_s r.delta_s); Table.S pct ])
    (diff_rows ~old_spans ~new_spans);
  t
