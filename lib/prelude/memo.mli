(** Bounded memo tables with hit/miss accounting.

    Backs the content-keyed analysis cache: expensive sweep results
    ([zeta], [phi], [gamma(r)]) are memoized under a digest of the decay
    matrix, so re-analyzing an identical space costs a hash lookup instead
    of an O(n^3) sweep.  Only memoize pure computations: racing misses may
    compute the value twice and keep either copy. *)

type ('k, 'v) t
(** A mutex-guarded memo table from ['k] to ['v]. *)

val create : ?max_size:int -> ?name:string -> unit -> ('k, 'v) t
(** A fresh table.  When it reaches [max_size] entries (default 512) it is
    cleared wholesale before the next insert — a crude bound that only
    exists to cap memory under unbounded streams of distinct keys.

    With [?name], the table mirrors its accounting into the {!Obs}
    registry as [memo.<name>.hits], [memo.<name>.misses] and
    [memo.<name>.evictions]; the registry counters are cumulative across
    {!reset_stats} (use {!Obs.reset_metrics} to zero them).
    @raise Invalid_argument if [max_size < 1]. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_add t key compute] returns the cached value for [key], or runs
    [compute ()] (outside the table lock), stores and returns it. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Whether a key is currently cached. *)

val length : ('k, 'v) t -> int
(** Number of cached entries. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry (stats are kept; see {!reset_stats}). *)

val hits : ('k, 'v) t -> int
(** Lookups answered from the table since creation or {!reset_stats}. *)

val misses : ('k, 'v) t -> int
(** Lookups that had to compute. *)

val evictions : ('k, 'v) t -> int
(** Wholesale clears forced by the [max_size] bound. *)

val reset_stats : ('k, 'v) t -> unit
(** Zero the hit/miss/eviction counters (the cached entries stay). *)
