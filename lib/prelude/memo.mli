(** Bounded memo tables with LRU eviction and hit/miss accounting.

    Backs the content-keyed analysis cache: expensive sweep results
    ([zeta], [phi], [gamma(r)]) are memoized under a digest of the decay
    matrix, so re-analyzing an identical space costs a hash lookup instead
    of an O(n^3) sweep.  Also backs the persistent serve store, which
    needs the same bound-and-evict policy across restarts.  Only memoize
    pure computations: racing misses may compute the value twice and keep
    either copy. *)

type ('k, 'v) t
(** A mutex-guarded memo table from ['k] to ['v]. *)

val create : ?max_size:int -> ?name:string -> unit -> ('k, 'v) t
(** A fresh table holding at most [max_size] entries (default 512).  An
    insert that would exceed the bound first evicts the least-recently
    used entry (every {!find_or_add} hit, {!find_opt} hit and {!set}
    refreshes recency), so a skewed request stream keeps its hot keys
    while unbounded streams of distinct keys cannot leak memory.

    With [?name], the table mirrors its accounting into the {!Obs}
    registry as [memo.<name>.hits], [memo.<name>.misses] and
    [memo.<name>.evictions]; the registry counters are cumulative across
    {!reset_stats} (use {!Obs.reset_metrics} to zero them).
    @raise Invalid_argument if [max_size < 1]. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_add t key compute] returns the cached value for [key], or runs
    [compute ()] (outside the table lock), stores and returns it. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Cached value for [key], refreshing its recency; counts as a hit or a
    miss.  Pair with {!set} when the compute step cannot run inside
    {!find_or_add} (e.g. batched computation of many missing keys). *)

val set : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite, evicting the LRU entry first if the key is new
    and the table is full.  Counts as neither hit nor miss. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Whether a key is currently cached (does not refresh recency). *)

val length : ('k, 'v) t -> int
(** Number of cached entries (always [<= max_size]). *)

val to_alist : ('k, 'v) t -> ('k * 'v) list
(** All entries in recency order, least recently used first — the
    serialization order of the persistent store (replaying {!set} over
    the list reproduces the same LRU state). *)

val clear : ('k, 'v) t -> unit
(** Drop every entry (stats are kept; see {!reset_stats}). *)

val hits : ('k, 'v) t -> int
(** Lookups answered from the table since creation or {!reset_stats}. *)

val misses : ('k, 'v) t -> int
(** Lookups that had to compute. *)

val evictions : ('k, 'v) t -> int
(** Entries dropped by the LRU bound. *)

val reset_stats : ('k, 'v) t -> unit
(** Zero the hit/miss/eviction counters (the cached entries stay). *)
