(* A bounded memo table with hit/miss/eviction accounting.

   The table is a plain Hashtbl guarded by a mutex so that concurrent
   lookups from domain-pool workers are safe.  The compute function runs
   OUTSIDE the lock: two racing misses on the same key may both compute,
   and the second insert wins — callers must therefore memoize pure
   (idempotent) computations only, which is exactly the analysis-cache
   use case (sweep results are deterministic functions of the key).

   Eviction is wholesale: when the table reaches [max_size] entries it is
   cleared before the new insert.  Entries are tiny (witness records,
   floats) and the bound only exists to keep unbounded streams of distinct
   decay spaces from leaking, so the crude policy is fine.

   A named table additionally mirrors its accounting into the Obs
   registry (memo.<name>.hits / .misses / .evictions); those registry
   counters are cumulative across [reset_stats], which only zeroes the
   per-table fields. *)

type obs_counters = {
  c_hits : Obs.counter;
  c_misses : Obs.counter;
  c_evictions : Obs.counter;
}

type ('k, 'v) t = {
  tbl : ('k, 'v) Hashtbl.t;
  lock : Mutex.t;
  max_size : int;
  obs : obs_counters option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(max_size = 512) ?name () =
  if max_size < 1 then invalid_arg "Memo.create: max_size must be positive";
  let obs =
    Option.map
      (fun n ->
        {
          c_hits = Obs.counter (Printf.sprintf "memo.%s.hits" n);
          c_misses = Obs.counter (Printf.sprintf "memo.%s.misses" n);
          c_evictions = Obs.counter (Printf.sprintf "memo.%s.evictions" n);
        })
      name
  in
  { tbl = Hashtbl.create 64; lock = Mutex.create (); max_size; obs;
    hits = 0; misses = 0; evictions = 0 }

let find_or_add t key compute =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.tbl key with
  | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      Option.iter (fun o -> Obs.incr o.c_hits) t.obs;
      v
  | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      Option.iter (fun o -> Obs.incr o.c_misses) t.obs;
      let v = compute () in
      Mutex.lock t.lock;
      let evicted = Hashtbl.length t.tbl >= t.max_size in
      if evicted then begin
        Hashtbl.reset t.tbl;
        t.evictions <- t.evictions + 1
      end;
      Hashtbl.replace t.tbl key v;
      Mutex.unlock t.lock;
      if evicted then Option.iter (fun o -> Obs.incr o.c_evictions) t.obs;
      v

let mem t key =
  Mutex.lock t.lock;
  let r = Hashtbl.mem t.tbl key in
  Mutex.unlock t.lock;
  r

let length t =
  Mutex.lock t.lock;
  let r = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  r

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.tbl;
  Mutex.unlock t.lock

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let reset_stats t =
  Mutex.lock t.lock;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  Mutex.unlock t.lock
