(* A bounded memo table with hit/miss accounting.

   The table is a plain Hashtbl guarded by a mutex so that concurrent
   lookups from domain-pool workers are safe.  The compute function runs
   OUTSIDE the lock: two racing misses on the same key may both compute,
   and the second insert wins — callers must therefore memoize pure
   (idempotent) computations only, which is exactly the analysis-cache
   use case (sweep results are deterministic functions of the key).

   Eviction is wholesale: when the table reaches [max_size] entries it is
   cleared before the new insert.  Entries are tiny (witness records,
   floats) and the bound only exists to keep unbounded streams of distinct
   decay spaces from leaking, so the crude policy is fine. *)

type ('k, 'v) t = {
  tbl : ('k, 'v) Hashtbl.t;
  lock : Mutex.t;
  max_size : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(max_size = 512) () =
  if max_size < 1 then invalid_arg "Memo.create: max_size must be positive";
  { tbl = Hashtbl.create 64; lock = Mutex.create (); max_size;
    hits = 0; misses = 0 }

let find_or_add t key compute =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.tbl key with
  | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      v
  | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      let v = compute () in
      Mutex.lock t.lock;
      if Hashtbl.length t.tbl >= t.max_size then Hashtbl.reset t.tbl;
      Hashtbl.replace t.tbl key v;
      Mutex.unlock t.lock;
      v

let mem t key =
  Mutex.lock t.lock;
  let r = Hashtbl.mem t.tbl key in
  Mutex.unlock t.lock;
  r

let length t =
  Mutex.lock t.lock;
  let r = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  r

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.tbl;
  Mutex.unlock t.lock

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  Mutex.lock t.lock;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.lock
