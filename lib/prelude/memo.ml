(* A bounded memo table with per-entry LRU eviction and hit/miss/eviction
   accounting.

   The table is a plain Hashtbl guarded by a mutex so that concurrent
   lookups from domain-pool workers are safe.  The compute function runs
   OUTSIDE the lock: two racing misses on the same key may both compute,
   and the second insert wins — callers must therefore memoize pure
   (idempotent) computations only, which is exactly the analysis-cache
   use case (sweep results are deterministic functions of the key).

   Eviction is LRU, one entry at a time: every entry carries a recency
   stamp (a table-wide tick, bumped under the lock on every touch), and
   when an insert would push the table past [max_size] the stalest entry
   is dropped first.  The stamp scan is O(table size) but only runs on an
   overflowing insert, never on a hit, so the hot path stays a hash
   lookup; the tables this backs (analysis results keyed by content
   digest, the persistent serve store) cap out in the hundreds-to-
   thousands, where a scan is nanoseconds against the O(n^3) sweep a
   hit saves.

   A named table additionally mirrors its accounting into the Obs
   registry (memo.<name>.hits / .misses / .evictions); those registry
   counters are cumulative across [reset_stats], which only zeroes the
   per-table fields. *)

type obs_counters = {
  c_hits : Obs.counter;
  c_misses : Obs.counter;
  c_evictions : Obs.counter;
}

type 'v entry = { value : 'v; mutable stamp : int }

type ('k, 'v) t = {
  tbl : ('k, 'v entry) Hashtbl.t;
  lock : Mutex.t;
  max_size : int;
  obs : obs_counters option;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(max_size = 512) ?name () =
  if max_size < 1 then invalid_arg "Memo.create: max_size must be positive";
  let obs =
    Option.map
      (fun n ->
        {
          c_hits = Obs.counter (Printf.sprintf "memo.%s.hits" n);
          c_misses = Obs.counter (Printf.sprintf "memo.%s.misses" n);
          c_evictions = Obs.counter (Printf.sprintf "memo.%s.evictions" n);
        })
      name
  in
  { tbl = Hashtbl.create 64; lock = Mutex.create (); max_size; obs;
    tick = 0; hits = 0; misses = 0; evictions = 0 }

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

(* Drop least-recently-used entries until an insert fits under
   [max_size].  Caller holds the lock. *)
let evict_for_insert t =
  let dropped = ref 0 in
  while Hashtbl.length t.tbl >= t.max_size do
    let victim = ref None in
    Hashtbl.iter
      (fun k e ->
        match !victim with
        | Some (_, s) when s <= e.stamp -> ()
        | _ -> victim := Some (k, e.stamp))
      t.tbl;
    match !victim with
    | None -> raise Exit (* unreachable: length >= max_size >= 1 *)
    | Some (k, _) ->
        Hashtbl.remove t.tbl k;
        t.evictions <- t.evictions + 1;
        incr dropped
  done;
  !dropped

(* Insert under the lock, evicting first when the key is new and the
   table is full.  Returns how many entries were evicted. *)
let insert t key v =
  let evicted =
    if Hashtbl.mem t.tbl key then 0 else evict_for_insert t
  in
  let e = { value = v; stamp = 0 } in
  touch t e;
  Hashtbl.replace t.tbl key e;
  evicted

let note_evictions t n =
  if n > 0 then
    Option.iter (fun o -> Obs.add o.c_evictions n) t.obs

let find_or_add t key compute =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      t.hits <- t.hits + 1;
      touch t e;
      Mutex.unlock t.lock;
      Option.iter (fun o -> Obs.incr o.c_hits) t.obs;
      e.value
  | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      Option.iter (fun o -> Obs.incr o.c_misses) t.obs;
      let v = compute () in
      Mutex.lock t.lock;
      let evicted = insert t key v in
      Mutex.unlock t.lock;
      note_evictions t evicted;
      v

let find_opt t key =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
        t.hits <- t.hits + 1;
        touch t e;
        Some e.value
    | None ->
        t.misses <- t.misses + 1;
        None
  in
  Mutex.unlock t.lock;
  Option.iter
    (fun o -> Obs.incr (if r = None then o.c_misses else o.c_hits))
    t.obs;
  r

let set t key v =
  Mutex.lock t.lock;
  let evicted = insert t key v in
  Mutex.unlock t.lock;
  note_evictions t evicted

let mem t key =
  Mutex.lock t.lock;
  let r = Hashtbl.mem t.tbl key in
  Mutex.unlock t.lock;
  r

let length t =
  Mutex.lock t.lock;
  let r = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  r

let to_alist t =
  Mutex.lock t.lock;
  let entries =
    Hashtbl.fold (fun k e acc -> (k, e.value, e.stamp) :: acc) t.tbl []
  in
  Mutex.unlock t.lock;
  entries
  |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
  |> List.map (fun (k, v, _) -> (k, v))

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.tbl;
  Mutex.unlock t.lock

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let reset_stats t =
  Mutex.lock t.lock;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  Mutex.unlock t.lock
