(** Deterministic, splittable pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment, test and benchmark is reproducible bit-for-bit from an
    explicit integer seed.  The generator is SplitMix64 (Steele, Lea &
    Flood), which has a 64-bit state, passes BigCrush, and supports cheap
    splitting into statistically independent streams. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Equal seeds
    give equal streams. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream.  Use one
    split generator per experimental unit to decouple draw counts. *)

val copy : t -> t
(** [copy g] duplicates the current state; the copy replays [g]'s future. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] draws uniformly from [0, n-1].  Requires [n > 0]. *)

val float : t -> float -> float
(** [float g x] draws uniformly from the half-open interval [0, x). *)

val uniform : t -> float -> float -> float
(** [uniform g lo hi] draws uniformly from [lo, hi). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is true with probability [p]. *)

val gaussian : ?mu:float -> ?sigma:float -> t -> float
(** Normal deviate via Box–Muller (defaults: [mu = 0.], [sigma = 1.]). *)

val exponential : t -> float -> float
(** [exponential g lambda] draws from Exp(lambda), mean [1/lambda]. *)

val rayleigh : t -> float -> float
(** [rayleigh g sigma] draws from the Rayleigh distribution with scale
    [sigma] (the envelope of a circular complex Gaussian). *)

val lognormal : ?mu:float -> ?sigma:float -> t -> float
(** [lognormal g] draws [exp X] with [X ~ N(mu, sigma^2)]. *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Pareto deviate with shape [alpha] and scale [x_min]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample g k arr] draws [k] distinct elements uniformly without
    replacement.  Requires [k <= Array.length arr]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val backoff : t -> attempt:int -> base:float -> cap:float -> float
(** [backoff g ~attempt ~base ~cap] is the delay (seconds) before retry
    number [attempt] (0-based): exponential growth [base * 2^attempt]
    capped at [cap], with "equal jitter" — half deterministic, half drawn
    uniformly from [g] — so concurrent retries de-synchronize without
    ever collapsing to zero.  Always in [[nominal/2, nominal)].  Seeded
    clients replay identical schedules.
    @raise Invalid_argument if [attempt < 0], [base <= 0] or
    [cap < base]. *)
