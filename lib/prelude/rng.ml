(* SplitMix64: a 64-bit state advanced by the golden-gamma constant, with a
   finalizer borrowed from MurmurHash3.  See Steele, Lea & Flood,
   "Fast splittable pseudorandom number generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let s = int64 g in
  { state = mix s }

let copy g = { state = g.state }

(* Uniform float in [0,1): use the top 53 bits. *)
let unit_float g =
  let bits = Int64.shift_right_logical (int64 g) 11 in
  Int64.to_float bits *. 0x1p-53

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for n < 2^24,
     and all callers use small bounds; use multiply-shift reduction. *)
  let bits = Int64.shift_right_logical (int64 g) 1 in
  Int64.to_int (Int64.rem bits (Int64.of_int n))

let float g x = unit_float g *. x

let uniform g lo hi = lo +. (unit_float g *. (hi -. lo))

let bool g = Int64.logand (int64 g) 1L = 1L

let bernoulli g p = unit_float g < p

let gaussian ?(mu = 0.) ?(sigma = 1.) g =
  (* Box-Muller; draw u1 away from 0 to keep log finite. *)
  let rec nonzero () =
    let u = unit_float g in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float g in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let exponential g lambda =
  if lambda <= 0. then invalid_arg "Rng.exponential: lambda must be positive";
  let rec nonzero () =
    let u = unit_float g in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. lambda

let rayleigh g sigma =
  if sigma <= 0. then invalid_arg "Rng.rayleigh: sigma must be positive";
  let rec nonzero () =
    let u = unit_float g in
    if u > 0. then u else nonzero ()
  in
  sigma *. sqrt (-2. *. log (nonzero ()))

let lognormal ?(mu = 0.) ?(sigma = 1.) g = exp (gaussian ~mu ~sigma g)

let pareto g ~alpha ~x_min =
  if alpha <= 0. || x_min <= 0. then
    invalid_arg "Rng.pareto: parameters must be positive";
  let rec nonzero () =
    let u = unit_float g in
    if u > 0. then u else nonzero ()
  in
  x_min /. (nonzero () ** (1. /. alpha))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample g k arr =
  let n = Array.length arr in
  if k > n then invalid_arg "Rng.sample: k exceeds array length";
  let idx = Array.init n Fun.id in
  (* Partial Fisher-Yates: fix the first k positions. *)
  for i = 0 to k - 1 do
    let j = i + int g (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.init k (fun i -> arr.(idx.(i)))

let choice g arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int g (Array.length arr))

(* Exponential backoff with "equal jitter": half the nominal delay is
   deterministic, the other half uniform — retries spread out instead of
   synchronizing, yet the delay never collapses to zero.  The schedule is
   a pure function of (generator state, attempt), so a seeded client
   replays the same retry timing on every run. *)
let backoff g ~attempt ~base ~cap =
  if attempt < 0 then invalid_arg "Rng.backoff: attempt must be >= 0";
  if not (base > 0.) then invalid_arg "Rng.backoff: base must be positive";
  if not (cap >= base) then invalid_arg "Rng.backoff: cap must be >= base";
  let nominal =
    (* 2^attempt without overflow: saturate at the cap early. *)
    let rec grow d k = if k = 0 || d >= cap then d else grow (d *. 2.) (k - 1) in
    Float.min cap (grow base attempt)
  in
  (nominal /. 2.) +. float g (nominal /. 2.)
