(** Zero-dependency tracing spans and process-wide metrics registry.

    Two instruments, two rules:

    - {b Spans} ({!with_span}) record wall-clock timing of nested regions
      and are written as JSONL to a trace sink.  They are {e disabled by
      default}: with no sink installed, {!with_span} costs one atomic
      load and a branch, so hot paths stay instrumented permanently (the
      kernel bench asserts the disabled-path overhead).
    - {b Metrics} (counters, gauges, log-bucket histograms) are {e always
      collected}, but only at batch granularity — once per sweep, task or
      repair — so the registry costs nothing measurable when unread.
      Snapshots are produced on demand as a {!Table.t} or flushed to the
      trace sink as JSONL.

    Spans nest per domain (domain-local stacks), so {!Parallel} workers
    trace their chunks independently of the caller's open span.  Each
    span becomes one JSONL line when it {e closes}; children therefore
    appear before their parents in the file, linked by [parent] id.

    Trace event shapes:
    {v
{"type":"span","id":N,"parent":N,"domain":N,"name":"...",
 "start_s":F,"dur_s":F,"ok":true,"attrs":{...}}
{"type":"counter","name":"...","value":N}
{"type":"gauge","name":"...","value":F}
{"type":"histogram","name":"...","count":N,"sum":F,"buckets":{"I":N,...}}
    v} *)

type value = S of string | I of int | F of float | B of bool
(** Span attribute values: string, int, float, bool. *)

val value_to_string : value -> string
(** Human rendering (no JSON quoting). *)

val now_s : unit -> float
(** Wall clock in seconds ([Unix.gettimeofday]); the clock used for all
    span timestamps and histogram timing helpers. *)

(** {1 Tracing} *)

val set_trace_file : ?append:bool -> string -> unit
(** Open [path] as the JSONL trace sink, replacing any previous sink.
    Truncates by default; [~append:true] appends instead, which is how a
    supervised worker reopens the trace file across respawns so one file
    accumulates every incarnation's spans.  Registers an [at_exit] hook
    so the sink is flushed and closed even when the process exits
    through [exit]. *)

val close_trace : unit -> unit
(** Flush and close the current sink, if any.  Idempotent. *)

val tracing : unit -> bool
(** [true] iff a trace sink is installed. *)

val with_span : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span ~attrs name f] runs [f ()].  When tracing, the call is
    recorded as a span: nested under the innermost open span of the
    current domain, timed with {!now_s}, and emitted as one JSONL line
    when [f] returns.  If [f] raises, the span is emitted with
    [ok:false] and an ["error"] attribute, and the exception is
    re-raised.  When not tracing this is a single atomic load. *)

val add_span_attr : string -> value -> unit
(** Attach an attribute to the innermost open span of the current
    domain.  No-op when not tracing or when no span is open. *)

val current_span_id : unit -> int
(** Id of the innermost open span of the current domain, or [0] when
    none is open (or tracing is off).  This is the id a caller puts on
    the wire as a remote parent so another process can stitch its spans
    under ours. *)

val alloc_span_id : unit -> int
(** Reserve a span id without opening a span.  Used by event-loop style
    callers (the loadgen drivers) that must place a span's id on the
    wire before the span's extent is known; pass it back to
    {!emit_span_at} via [?id].  Always allocates, even when tracing is
    off, so ids stay stable whether or not a sink is installed. *)

val emit_span_at :
  ?attrs:(string * value) list ->
  ?parent:int ->
  ?id:int ->
  ?ok:bool ->
  name:string ->
  start_s:float ->
  dur_s:float ->
  unit ->
  int
(** Emit one already-closed span with explicit timing, bypassing the
    per-domain stack.  [parent] defaults to the innermost open span of
    the current domain (0 = root); [id] defaults to a fresh id.  Used
    for backdated spans — queue waits measured by timestamps, retry
    backoffs, per-request client spans in an event loop — that cannot be
    expressed as a [with_span] around a call.  Returns the span id used,
    or [0] without emitting when tracing is off. *)

(** {1 Per-span profiling}

    When enabled {e and} a trace sink is installed, every span also
    captures [Gc.quick_stat] and CPU-time readings at open and close and
    records the deltas as attributes:

    {v
cpu_s                 process CPU seconds (Sys.time delta)
gc.minor_words        words allocated in the minor heap
gc.major_words        words allocated directly in the major heap
gc.promoted_words     words surviving a minor collection
gc.alloc_bytes        (minor + major - promoted) * word size
gc.minor_collections  minor collections during the span
gc.major_collections  major collection slices during the span
gc.heap_words         major heap size at span close (absolute)
    v}

    Both readings happen on the domain running the span, so parallel
    workers report their own allocation (the span's [domain] field
    attributes the skew).  [Gc.quick_stat] triggers no collection; the
    whole capture is a few dozen nanoseconds and sits behind the
    sink-installed branch, so the disabled fast path of {!with_span} is
    unchanged.  Off by default. *)

val set_profile : bool -> unit
(** Enable/disable GC + CPU capture on spans.  Takes effect for spans
    opened after the call; has no effect while no sink is installed. *)

val profiling : unit -> bool
(** [true] iff profiling capture is enabled. *)

(** {1 Metrics}

    Metrics live in a process-wide registry keyed by name; constructors
    are idempotent (the same name returns the same metric) and raise
    [Invalid_argument] if the name is already registered with a
    different metric kind.  All updates are domain-safe. *)

type counter
type gauge
type histogram

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val reset_counter : counter -> unit
(** Zero one counter (e.g. per-sweep statistics between runs). *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : string -> histogram
(** Fixed log2-scale bucketing, see {!bucket_of}. *)

val observe : histogram -> float -> unit

val time_histogram : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and {!observe} its wall-clock duration in seconds,
    also on exceptional exit. *)

val histogram_count : histogram -> int

val histogram_sum : histogram -> float
(** Sum of all observed values except NaN (which is counted, in bucket 0,
    but excluded from the sum so it cannot poison the mean). *)

val histogram_bucket : histogram -> int -> int
(** Count in bucket [i], [0 <= i < num_buckets]. *)

val histogram_quantile : histogram -> float -> float
(** [histogram_quantile h q] estimates the [q]-quantile ([0 <= q <= 1],
    clamped) of the observed values from the log2 buckets, at the
    geometric midpoint of the selected bucket — the same estimator
    {!Obs_tools.Trace} uses offline, so a live [p99] and a trace-derived
    one are comparable.  [0.] on an empty histogram. *)

val num_buckets : int
(** 64. *)

val bucket_of : float -> int
(** Bucket index for a value: bucket [i] (for [1 <= i <= 62]) holds
    values in [[2^(i-31), 2^(i-30))]; bucket 0 holds non-positive values
    (and NaN); bucket 63 is overflow.  For durations in seconds the
    range spans ~0.5ns to ~4e9 s. *)

val bucket_lower_bound : int -> float
(** Lower edge of bucket [i]: [2^(i-31)], or [neg_infinity] for bucket
    0. *)

val metric_names : unit -> string list
(** All registered metric names, sorted. *)

(** {1 Snapshots}

    A point-in-time copy of the whole registry, used by the serving
    layer's telemetry snapshotter and the [metrics] wire op.  Histogram
    buckets are reported sparsely as [(index, count)] pairs in index
    order. *)

type metric_snapshot =
  | Counter_snapshot of int
  | Gauge_snapshot of float
  | Histogram_snapshot of {
      count : int;
      sum : float;
      buckets : (int * int) list;
    }

val snapshot : unit -> (string * metric_snapshot) list
(** Every registered metric with its current value, sorted by name. *)

val reset_metrics : unit -> unit
(** Zero every registered metric (counters to 0, gauges to 0, histograms
    emptied).  Registration survives. *)

val flush_metrics : unit -> unit
(** Write one JSONL event per registered metric to the trace sink, in
    name order.  No-op without a sink. *)

val summary_table : unit -> Table.t
(** Snapshot of every registered metric as a table sorted by name. *)

val print_summary : unit -> unit
(** [Table.print (summary_table ())]. *)
