(** A supervised fixed-size domain pool and deterministic chunked
    map-reduce.

    The O(n^3) parameter sweeps of the decay layer (metricity, the relaxed
    triangle constant, the fading parameter) are embarrassingly parallel in
    their outer loop.  This module provides the shared substrate: a pool of
    worker domains spawned {e once} and reused across calls (domain spawn
    costs milliseconds — far more than a typical chunk), plus
    {!map_reduce_chunks}, which splits an index range into contiguous
    chunks, maps them (in parallel when a pool has workers) and combines
    the partial results {e in chunk order}.

    {b Determinism.}  Chunks are contiguous, ordered sub-ranges of
    [\[lo, hi)], and [combine] is folded left-to-right over the chunk
    results.  A consumer whose [combine] is associative over its chunked
    fold — e.g. "keep the maximum, ties broken by first occurrence", which
    the metricity witnesses use — therefore returns bit-for-bit the same
    value at every [jobs] count.  [jobs] controls work splitting only,
    never the result.

    {b Fault tolerance.}  A raising task cancels the rest of its batch
    (queued-but-unstarted tasks are skipped) and the first recorded
    exception re-raises in the caller with its original backtrace — a
    crash is never swallowed and never hangs the sweep.  Worker domains
    survive rogue task exceptions (recorded, loop restarted) and any
    worker that does exit while the pool is open is respawned by {!heal},
    which every {!run} performs first.  Wall-clock budgets are cooperative:
    an ambient ({!with_deadline}) or explicit [?deadline] bound is checked
    at task and chunk boundaries and raises the typed {!Timeout}. *)

exception Timeout
(** Raised (in the caller) when a deadline-bounded batch exceeds its
    wall-clock budget.  See {!with_deadline} and the [?deadline]
    arguments. *)

type t
(** A pool of worker domains plus the calling domain. *)

val create : ?num_domains:int -> unit -> t
(** [create ()] spawns [num_domains] worker domains (default
    [Domain.recommended_domain_count () - 1], clamped at 0).  With 0
    workers the pool is still usable: all work runs on the caller. *)

val num_domains : t -> int
(** Worker domains the pool is meant to keep alive (the caller is not
    counted); [0] after {!shutdown}. *)

val num_live : t -> int
(** Worker domains currently alive.  Equals {!num_domains} unless a worker
    died and {!heal} has not yet run. *)

val trapped_exceptions : t -> int
(** Exceptions that escaped a task into a worker's own loop (a rogue
    direct queue user, an asynchronous exception) since the pool was
    created.  Tasks submitted through {!run} capture their exceptions, so
    this stays [0] in normal operation; a nonzero value means a worker
    self-healed. *)

val heal : t -> unit
(** Respawn any worker domains that have exited while the pool is open,
    restoring {!num_live} to {!num_domains}.  Called automatically at the
    start of every {!run}; exposed for tests and long-lived servers.
    No-op on a closed or fully healthy pool. *)

val worker_task_counts : t -> (int * int) list
(** Per-domain task execution counts for this pool, as
    [(domain_id, tasks_run)] pairs sorted by domain id.  The calling
    domain appears too when it drained queued tasks itself.

    The pool also publishes process-wide metrics into the {!Obs}
    registry: [parallel.worker_tasks], [parallel.caller_tasks],
    [parallel.heal_events], [parallel.trapped_exceptions],
    [parallel.timeouts] (counters) and [parallel.queue_wait_s]
    (histogram of enqueue-to-start latency). *)

val shutdown : t -> unit
(** Terminate and join the pool's workers.  Idempotent.  Pending tasks are
    drained before workers exit. *)

val get_default : unit -> t
(** The global shared pool, created on first use with the default size.
    Library entry points taking [?pool] fall back to this. *)

val auto_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the natural [jobs] value for
    "use the whole machine". *)

val default_jobs : unit -> int
(** The ambient job count used when an optional [?jobs] argument is
    omitted.  Starts at 1 (fully sequential) so nothing parallelizes
    behind a caller's back. *)

val set_default_jobs : int -> unit
(** Set the ambient job count (clamped to >= 1).  The [bg --jobs] flag
    uses this so that deeply nested sweeps (e.g. inside experiments, which
    take no [jobs] argument) pick up the requested parallelism.  Results
    are unaffected by construction; only wall-clock time changes. *)

val resolve_jobs : int option -> int
(** [resolve_jobs (Some j)] is [max 1 j]; [resolve_jobs None] is
    {!default_jobs}[ ()].  The idiom for [?jobs] parameters. *)

val with_deadline : seconds:float -> (unit -> 'a) -> 'a
(** [with_deadline ~seconds f] runs [f] under an ambient wall-clock budget
    of [seconds]: every {!run} / {!map_reduce_chunks} reached from [f]
    (on any domain) polls the deadline at task/chunk boundaries and raises
    {!Timeout} once it has passed.  Nested budgets take the minimum (an
    inner call can only tighten).  The bound is cooperative — code that
    never reaches a checkpoint is not interrupted; long-running loops can
    poll explicitly with {!check_deadline}.  The previous ambient deadline
    is restored on exit, normal or exceptional. *)

val check_deadline : ?deadline:float -> unit -> unit
(** Raise {!Timeout} if the ambient deadline (tightened by [?deadline],
    an absolute [Unix.gettimeofday]-based time) has passed.  The explicit
    polling point for long sequential loops. *)

val run : ?pool:t -> ?deadline:float -> (unit -> 'a) array -> 'a array
(** Execute the thunks, possibly in parallel, and return their results in
    input order.  The caller participates in the work (so a 0-worker pool
    degrades to a plain sequential loop).  If any thunk raises, the first
    recorded exception cancels the batch's not-yet-started thunks and is
    re-raised in the caller with its original backtrace (with a
    sequential/1-job pool "first recorded" is exactly "lowest index").
    [?deadline] is an absolute wall-clock bound checked before each thunk
    starts; it combines (min) with the ambient {!with_deadline} bound and
    surfaces as {!Timeout}. *)

val map_reduce_chunks :
  jobs:int ->
  lo:int ->
  hi:int ->
  neutral:'a ->
  map:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a
(** [map_reduce_chunks ~jobs ~lo ~hi ~neutral ~map ~combine] splits
    [\[lo, hi)] into at most [jobs] contiguous chunks, evaluates
    [map chunk_lo chunk_hi] for each (in parallel when [jobs > 1] and the
    pool has workers) and folds [combine] over the results in ascending
    chunk order.  [neutral] is returned for an empty range.  With
    [jobs <= 1] and no active {!with_deadline} budget this is exactly
    [map lo hi] — no combine, no overhead; under a budget the sequential
    pass is sliced so the deadline is polled between slices (the
    combine-in-chunk-order contract keeps the result bit-identical).  A
    [map] that raises cancels the remaining chunks and re-raises in the
    caller; an exceeded budget raises {!Timeout}.  Parallel work always
    runs on the shared {!get_default} pool. *)
