(** A fixed-size domain pool and deterministic chunked map-reduce.

    The O(n^3) parameter sweeps of the decay layer (metricity, the relaxed
    triangle constant, the fading parameter) are embarrassingly parallel in
    their outer loop.  This module provides the shared substrate: a pool of
    worker domains spawned {e once} and reused across calls (domain spawn
    costs milliseconds — far more than a typical chunk), plus
    {!map_reduce_chunks}, which splits an index range into contiguous
    chunks, maps them (in parallel when a pool has workers) and combines
    the partial results {e in chunk order}.

    {b Determinism.}  Chunks are contiguous, ordered sub-ranges of
    [\[lo, hi)], and [combine] is folded left-to-right over the chunk
    results.  A consumer whose [combine] is associative over its chunked
    fold — e.g. "keep the maximum, ties broken by first occurrence", which
    the metricity witnesses use — therefore returns bit-for-bit the same
    value at every [jobs] count.  [jobs] controls work splitting only,
    never the result. *)

type t
(** A pool of worker domains plus the calling domain. *)

val create : ?num_domains:int -> unit -> t
(** [create ()] spawns [num_domains] worker domains (default
    [Domain.recommended_domain_count () - 1], clamped at 0).  With 0
    workers the pool is still usable: all work runs on the caller. *)

val num_domains : t -> int
(** Worker domains owned by the pool (the caller is not counted). *)

val shutdown : t -> unit
(** Terminate and join the pool's workers.  Idempotent.  Pending tasks are
    drained before workers exit. *)

val get_default : unit -> t
(** The global shared pool, created on first use with the default size.
    Library entry points taking [?pool] fall back to this. *)

val auto_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the natural [jobs] value for
    "use the whole machine". *)

val default_jobs : unit -> int
(** The ambient job count used when an optional [?jobs] argument is
    omitted.  Starts at 1 (fully sequential) so nothing parallelizes
    behind a caller's back. *)

val set_default_jobs : int -> unit
(** Set the ambient job count (clamped to >= 1).  The [bg --jobs] flag
    uses this so that deeply nested sweeps (e.g. inside experiments, which
    take no [jobs] argument) pick up the requested parallelism.  Results
    are unaffected by construction; only wall-clock time changes. *)

val resolve_jobs : int option -> int
(** [resolve_jobs (Some j)] is [max 1 j]; [resolve_jobs None] is
    {!default_jobs}[ ()].  The idiom for [?jobs] parameters. *)

val run : ?pool:t -> (unit -> 'a) array -> 'a array
(** Execute the thunks, possibly in parallel, and return their results in
    input order.  The caller participates in the work (so a 0-worker pool
    degrades to a plain sequential loop).  If any thunk raises, the first
    (lowest-index) exception is re-raised after all thunks finish. *)

val map_reduce_chunks :
  jobs:int ->
  lo:int ->
  hi:int ->
  neutral:'a ->
  map:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a
(** [map_reduce_chunks ~jobs ~lo ~hi ~neutral ~map ~combine] splits
    [\[lo, hi)] into at most [jobs] contiguous chunks, evaluates
    [map chunk_lo chunk_hi] for each (in parallel when [jobs > 1] and the
    pool has workers) and folds [combine] over the results in ascending
    chunk order.  [neutral] is returned for an empty range.  With
    [jobs <= 1] this is exactly [map lo hi] — no combine, no overhead.
    Parallel work always runs on the shared {!get_default} pool. *)
