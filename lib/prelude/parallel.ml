(* A fixed-size supervised domain pool.  Workers are spawned once and block
   on a condition variable between bursts of work; tasks are plain closures
   pulled from a shared queue.  The caller of [run] participates in the
   work, so a pool with zero workers (single-core machines) degrades to a
   sequential loop with no domain traffic at all.

   Fault tolerance: [run] captures the first exception a task raises
   (with its backtrace), flips a cancellation flag so queued-but-unstarted
   tasks of the same batch are skipped, and re-raises in the caller once
   the batch has drained.  A task exception never reaches a worker's own
   loop, but if one somehow does (a rogue direct [Queue] user, an
   asynchronous exception), the worker records it and restarts its loop
   instead of dying; as a second line of defence, [heal] — called on
   every [run] — respawns any worker domain that has actually exited
   while the pool is open.  Sweeps can also be bounded in wall-clock time:
   an ambient (or explicit) absolute deadline is checked at task and chunk
   boundaries and surfaces as the typed {!Timeout} exception. *)

exception Timeout

(* Pool metrics (process-wide, batch-granularity: a "task" here is a
   whole chunk of a sweep, so a couple of clock reads per task cost
   nothing against the chunk itself). *)
let m_worker_tasks = Obs.counter "parallel.worker_tasks"
let m_caller_tasks = Obs.counter "parallel.caller_tasks"
let m_heal_events = Obs.counter "parallel.heal_events"
let m_trapped = Obs.counter "parallel.trapped_exceptions"
let m_timeouts = Obs.counter "parallel.timeouts"
let m_queue_wait = Obs.histogram "parallel.queue_wait_s"

type t = {
  mutable domains : unit Domain.t array;
  mutable target : int; (* intended worker count while open *)
  alive : int Atomic.t; (* spawned workers that have not exited *)
  trapped : int Atomic.t; (* exceptions that escaped a task into a worker *)
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_ready : Condition.t;
  task_tally : (int, int ref) Hashtbl.t; (* domain id -> tasks run; under lock *)
  mutable closed : bool;
}

(* Caller must hold [pool.lock]. *)
let bump_tally pool =
  let id = (Domain.self () :> int) in
  match Hashtbl.find_opt pool.task_tally id with
  | Some r -> incr r
  | None -> Hashtbl.replace pool.task_tally id (ref 1)

let worker_loop pool =
  let rec next () =
    match Queue.take_opt pool.queue with
    | Some task -> Some task
    | None ->
        if pool.closed then None
        else begin
          Condition.wait pool.work_ready pool.lock;
          next ()
        end
  in
  let rec loop () =
    Mutex.lock pool.lock;
    let task = next () in
    if task <> None then bump_tally pool;
    Mutex.unlock pool.lock;
    match task with
    | None -> ()
    | Some task ->
        Obs.incr m_worker_tasks;
        (* Tasks wrap their own exceptions; this safety net records a rogue
           task's escape instead of silently swallowing it, and the worker
           lives on. *)
        (try task () with
        | _ ->
            Atomic.incr pool.trapped;
            Obs.incr m_trapped);
        loop ()
  in
  loop ()

let spawn_worker pool =
  (* Count the worker alive from the moment it is requested so [heal]
     cannot over-spawn while a fresh domain is still starting up. *)
  Atomic.incr pool.alive;
  Domain.spawn (fun () ->
      Fun.protect
        ~finally:(fun () -> Atomic.decr pool.alive)
        (fun () ->
          (* Self-healing in place: if anything escapes the loop machinery
             itself, restart the loop rather than losing the domain. *)
          let rec go () =
            match worker_loop pool with
            | () -> ()
            | exception _ ->
                Atomic.incr pool.trapped;
                Obs.incr m_trapped;
                if not pool.closed then go ()
          in
          go ()))

let create ?num_domains () =
  let n =
    match num_domains with
    | Some n -> max 0 n
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    {
      domains = [||];
      target = n;
      alive = Atomic.make 0;
      trapped = Atomic.make 0;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_ready = Condition.create ();
      task_tally = Hashtbl.create 16;
      closed = false;
    }
  in
  pool.domains <- Array.init n (fun _ -> spawn_worker pool);
  pool

let num_domains pool = pool.target
let num_live pool = Atomic.get pool.alive
let trapped_exceptions pool = Atomic.get pool.trapped

let heal pool =
  if (not pool.closed) && Atomic.get pool.alive < pool.target then begin
    Mutex.lock pool.lock;
    let missing = pool.target - Atomic.get pool.alive in
    if (not pool.closed) && missing > 0 then begin
      pool.domains <-
        Array.append pool.domains
          (Array.init missing (fun _ -> spawn_worker pool));
      Obs.add m_heal_events missing
    end;
    Mutex.unlock pool.lock
  end

let worker_task_counts pool =
  Mutex.lock pool.lock;
  let l = Hashtbl.fold (fun id r acc -> (id, !r) :: acc) pool.task_tally [] in
  Mutex.unlock pool.lock;
  List.sort (fun (a, _) (b, _) -> compare a b) l

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  pool.target <- 0;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  (* A worker that died of a trapped asynchronous exception re-raises it
     on join; the failure is already recorded, so don't let it poison the
     shutdown path. *)
  Array.iter (fun d -> try Domain.join d with _ -> ()) pool.domains;
  pool.domains <- [||]

let default_pool = ref None

let get_default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create () in
      default_pool := Some p;
      p

let auto_jobs () = Domain.recommended_domain_count ()

let ambient_jobs = ref 1
let default_jobs () = !ambient_jobs
let set_default_jobs j = ambient_jobs := max 1 j
let resolve_jobs = function Some j -> max 1 j | None -> default_jobs ()

(* ------------------------------------------------------------ deadlines *)

let now () = Unix.gettimeofday ()

(* The ambient deadline is global (not domain-local) on purpose: sweeps
   fan work out over worker domains, and every participant must observe
   the caller's budget.  Batches of deadline-bounded work run one at a
   time (the CLI, the experiment runner), so a single slot suffices. *)
let ambient_deadline : float option Atomic.t = Atomic.make None

let effective_deadline explicit =
  match (explicit, Atomic.get ambient_deadline) with
  | None, d | d, None -> d
  | Some a, Some b -> Some (Float.min a b)

let deadline_passed = function Some t -> now () > t | None -> false

let check_deadline ?deadline () =
  if deadline_passed (effective_deadline deadline) then begin
    Obs.incr m_timeouts;
    raise Timeout
  end

let with_deadline ~seconds f =
  let saved = Atomic.get ambient_deadline in
  let t = now () +. Float.max 0. seconds in
  let t = match saved with Some s -> Float.min s t | None -> t in
  Atomic.set ambient_deadline (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set ambient_deadline saved) f

(* ----------------------------------------------------------------- run *)

let run ?pool ?deadline fns =
  let n = Array.length fns in
  if n = 0 then [||]
  else begin
    let deadline = effective_deadline deadline in
    let pool = match pool with Some p -> p | None -> get_default () in
    heal pool;
    let results = Array.make n None in
    let pending = ref n in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    (* First error wins: it cancels every not-yet-started task of this
       batch and is re-raised (with its backtrace) in the caller. *)
    let cancelled = Atomic.make false in
    let first_error = ref None in
    let record_error e bt =
      Mutex.lock done_lock;
      if !first_error = None then begin
        first_error := Some (e, bt);
        Atomic.set cancelled true;
        if e = Timeout then Obs.incr m_timeouts
      end;
      Mutex.unlock done_lock
    in
    (* Under profiling, each pool task gets its own span: tasks running
       in worker domains become root spans of that domain (the span's
       [domain] field plus its GC deltas expose per-worker allocation
       skew), while caller-run tasks nest under the sweep's span.  Gated
       on profiling — plain tracing keeps the established trace shape. *)
    let in_task_span i body =
      if Obs.tracing () && Obs.profiling () then
        Obs.with_span ~attrs:[ ("index", Obs.I i) ] "parallel.task" body
      else body ()
    in
    let task i () =
      if not (Atomic.get cancelled) then
        if deadline_passed deadline then
          record_error Timeout (Printexc.get_callstack 0)
        else begin
          match fns.(i) () with
          | v -> results.(i) <- Some v
          | exception e -> record_error e (Printexc.get_raw_backtrace ())
        end;
      Mutex.lock done_lock;
      decr pending;
      if !pending = 0 then Condition.signal done_cond;
      Mutex.unlock done_lock
    in
    (* Hand tasks 1..n-1 to the pool; the caller runs task 0 itself and
       then helps drain the queue, so every task runs exactly once even
       with zero workers. *)
    if n > 1 then begin
      Mutex.lock pool.lock;
      let enqueued_at = now () in
      for i = 1 to n - 1 do
        Queue.add
          (fun () ->
            Obs.observe m_queue_wait (now () -. enqueued_at);
            in_task_span i (task i))
          pool.queue
      done;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.lock
    end;
    Obs.incr m_caller_tasks;
    in_task_span 0 (task 0);
    let rec help () =
      Mutex.lock pool.lock;
      let t = Queue.take_opt pool.queue in
      if t <> None then bump_tally pool;
      Mutex.unlock pool.lock;
      match t with
      | Some t ->
          Obs.incr m_caller_tasks;
          t ();
          help ()
      | None -> ()
    in
    help ();
    Mutex.lock done_lock;
    while !pending > 0 do
      Condition.wait done_cond done_lock
    done;
    Mutex.unlock done_lock;
    match !first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map
          (function Some v -> v | None -> assert false)
          results
  end

let map_reduce_chunks ~jobs ~lo ~hi ~neutral ~map ~combine =
  if hi <= lo then neutral
  else begin
    (* The wall-clock bound is ambient ([with_deadline]): a [?deadline]
       argument here could never be erased (every parameter is labeled),
       so the budget travels out-of-band instead. *)
    let deadline = effective_deadline None in
    let check () = if deadline_passed deadline then raise Timeout in
    let len = hi - lo in
    let jobs = max 1 (min jobs len) in
    if jobs = 1 then
      match deadline with
      | None -> map lo hi
      | Some _ ->
          (* Sequential but deadline-bounded: slice the range so the
             deadline is polled between slices.  The slices are contiguous
             and combined left-to-right, so the result is bit-for-bit the
             one chunked consumers already guarantee at any jobs count. *)
          let slices = min len 16 in
          let size = (len + slices - 1) / slices in
          let acc = ref None in
          let clo = ref lo in
          while !clo < hi do
            check ();
            let chi = min hi (!clo + size) in
            let part = map !clo chi in
            (acc :=
               match !acc with
               | None -> Some part
               | Some a -> Some (combine a part));
            clo := chi
          done;
          (match !acc with Some a -> a | None -> neutral)
    else begin
      check ();
      let size = (len + jobs - 1) / jobs in
      let chunks = (len + size - 1) / size in
      let parts =
        run
          (Array.init chunks (fun k ->
               let clo = lo + (k * size) in
               let chi = min hi (clo + size) in
               fun () -> map clo chi))
      in
      (* Fold in ascending chunk order: ties in [combine] resolve exactly
         as they would in one left-to-right sequential pass. *)
      let acc = ref parts.(0) in
      for k = 1 to chunks - 1 do
        acc := combine !acc parts.(k)
      done;
      !acc
    end
  end
