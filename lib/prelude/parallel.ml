(* A fixed-size domain pool.  Workers are spawned once and block on a
   condition variable between bursts of work; tasks are plain closures
   pulled from a shared queue.  The caller of [run] participates in the
   work, so a pool with zero workers (single-core machines) degrades to a
   sequential loop with no domain traffic at all. *)

type t = {
  mutable domains : unit Domain.t array;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_ready : Condition.t;
  mutable closed : bool;
}

let worker pool =
  let rec next () =
    match Queue.take_opt pool.queue with
    | Some task -> Some task
    | None ->
        if pool.closed then None
        else begin
          Condition.wait pool.work_ready pool.lock;
          next ()
        end
  in
  let rec loop () =
    Mutex.lock pool.lock;
    let task = next () in
    Mutex.unlock pool.lock;
    match task with
    | None -> ()
    | Some task ->
        (* Tasks wrap their own exceptions; this is only a safety net so a
           rogue task cannot kill a shared worker. *)
        (try task () with _ -> ());
        loop ()
  in
  loop ()

let create ?num_domains () =
  let n =
    match num_domains with
    | Some n -> max 0 n
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    {
      domains = [||];
      queue = Queue.create ();
      lock = Mutex.create ();
      work_ready = Condition.create ();
      closed = false;
    }
  in
  pool.domains <- Array.init n (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let num_domains pool = Array.length pool.domains

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

let default_pool = ref None

let get_default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create () in
      default_pool := Some p;
      p

let auto_jobs () = Domain.recommended_domain_count ()

let ambient_jobs = ref 1
let default_jobs () = !ambient_jobs
let set_default_jobs j = ambient_jobs := max 1 j
let resolve_jobs = function Some j -> max 1 j | None -> default_jobs ()

let run ?pool fns =
  let n = Array.length fns in
  if n = 0 then [||]
  else begin
    let pool = match pool with Some p -> p | None -> get_default () in
    let results = Array.make n None in
    let pending = ref n in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    let task i () =
      let r = try Ok (fns.(i) ()) with e -> Error e in
      Mutex.lock done_lock;
      results.(i) <- Some r;
      decr pending;
      if !pending = 0 then Condition.signal done_cond;
      Mutex.unlock done_lock
    in
    (* Hand tasks 1..n-1 to the pool; the caller runs task 0 itself and
       then helps drain the queue, so every task runs exactly once even
       with zero workers. *)
    if n > 1 then begin
      Mutex.lock pool.lock;
      for i = 1 to n - 1 do
        Queue.add (task i) pool.queue
      done;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.lock
    end;
    task 0 ();
    let rec help () =
      Mutex.lock pool.lock;
      let t = Queue.take_opt pool.queue in
      Mutex.unlock pool.lock;
      match t with
      | Some t ->
          t ();
          help ()
      | None -> ()
    in
    help ();
    Mutex.lock done_lock;
    while !pending > 0 do
      Condition.wait done_cond done_lock
    done;
    Mutex.unlock done_lock;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let map_reduce_chunks ~jobs ~lo ~hi ~neutral ~map ~combine =
  if hi <= lo then neutral
  else begin
    let len = hi - lo in
    let jobs = max 1 (min jobs len) in
    if jobs = 1 then map lo hi
    else begin
      let size = (len + jobs - 1) / jobs in
      let chunks = (len + size - 1) / size in
      let parts =
        run
          (Array.init chunks (fun k ->
               let clo = lo + (k * size) in
               let chi = min hi (clo + size) in
               fun () -> map clo chi))
      in
      (* Fold in ascending chunk order: ties in [combine] resolve exactly
         as they would in one left-to-right sequential pass. *)
      let acc = ref parts.(0) in
      for k = 1 to chunks - 1 do
        acc := combine !acc parts.(k)
      done;
      !acc
    end
  end
