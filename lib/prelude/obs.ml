(* Zero-dependency observability: tracing spans and a process-wide
   metrics registry.

   Two design rules govern everything here:

   1. Disabled-by-default tracing with a no-op fast path.  [with_span]
      costs one atomic load and a branch when no trace sink is installed
      (the kernel bench asserts this stays under a microsecond per call),
      so the hot paths can stay instrumented permanently.

   2. Metrics are always collected but only at *batch* granularity.
      Counters are atomics that the instrumented subsystems publish into
      once per sweep / task / repair — never per triple — so the registry
      costs nothing measurable even when nobody reads it.  Snapshots
      (summary table, JSONL flush) are produced on demand.

   Spans nest per domain: each domain keeps its own span stack in
   domain-local storage, so parallel workers trace their chunks as root
   spans of their domain while the caller's enclosing span is unaffected.
   A span is emitted as one JSONL line when it closes (children therefore
   appear before their parents in the file; the [parent] id links them).

   The clock is [Unix.gettimeofday]: the only portable sub-microsecond
   clock available without C stubs.  Span durations are differences of
   closely spaced readings, where its non-monotonicity is limited to NTP
   steps — acceptable for diagnostics, never used for results. *)

type value = S of string | I of int | F of float | B of bool

let now_s = Unix.gettimeofday

(* ------------------------------------------------------------- JSON out *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* JSON has no inf/nan literals; map them to strings so every line stays
   parseable by any reader. *)
let buf_add_json_float b f =
  (* %.17g round-trips every double: epoch timestamps need the full
     mantissa or sub-second precision is lost. *)
  if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
  else buf_add_json_string b (Printf.sprintf "%h" f)

let buf_add_value b = function
  | S s -> buf_add_json_string b s
  | I i -> Buffer.add_string b (string_of_int i)
  | F f -> buf_add_json_float b f
  | B x -> Buffer.add_string b (if x then "true" else "false")

let buf_add_attrs b attrs =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_json_string b k;
      Buffer.add_char b ':';
      buf_add_value b v)
    attrs;
  Buffer.add_char b '}'

let value_to_string = function
  | S s -> s
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%g" f
  | B b -> string_of_bool b

(* ---------------------------------------------------------- trace sink *)

type sink = { oc : out_channel; lock : Mutex.t; mutable closed : bool }

let sink : sink option Atomic.t = Atomic.make None

let emit_line s line =
  Mutex.lock s.lock;
  if not s.closed then begin
    output_string s.oc line;
    output_char s.oc '\n'
  end;
  Mutex.unlock s.lock

let tracing () = Atomic.get sink <> None

let close_trace () =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      Atomic.set sink None;
      Mutex.lock s.lock;
      if not s.closed then begin
        s.closed <- true;
        flush s.oc;
        close_out_noerr s.oc
      end;
      Mutex.unlock s.lock

let at_exit_registered = ref false

let set_trace_file ?(append = false) path =
  close_trace ();
  let oc =
    if append then
      open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
    else open_out path
  in
  Atomic.set sink (Some { oc; lock = Mutex.create (); closed = false });
  (* The CLI exits through [exit] on experiment failures; close (and so
     flush) the sink from at_exit so a failing run still leaves a
     complete trace on disk. *)
  if not !at_exit_registered then begin
    at_exit_registered := true;
    Stdlib.at_exit close_trace
  end

(* --------------------------------------------------------------- spans *)

(* Optional per-span profiling: when enabled (and a sink is installed),
   each span captures [Gc.quick_stat] and CPU-time readings at open and
   close and records the deltas as attributes.  [Gc.quick_stat] is a
   cheap per-domain read (no collection is triggered), and both readings
   happen on the domain that runs the span, so parallel workers report
   their own allocation — per-worker skew is visible through the span's
   [domain] field.  Off by default; the cost sits behind the same
   sink-installed branch as tracing itself, so the disabled fast path is
   still one atomic load. *)
let profile_flag = Atomic.make false

let set_profile b = Atomic.set profile_flag b
let profiling () = Atomic.get profile_flag

type prof_start = {
  p_cpu : float; (* Sys.time: process CPU seconds *)
  p_minor : float; (* words *)
  p_promoted : float;
  p_major : float;
  p_minor_col : int;
  p_major_col : int;
}

let prof_now () =
  let q = Gc.quick_stat () in
  {
    p_cpu = Sys.time ();
    p_minor = q.Gc.minor_words;
    p_promoted = q.Gc.promoted_words;
    p_major = q.Gc.major_words;
    p_minor_col = q.Gc.minor_collections;
    p_major_col = q.Gc.major_collections;
  }

(* Allocated words = minor + major - promoted (promoted words would
   otherwise be counted in both heaps). *)
let alloc_attrs p0 =
  let q = Gc.quick_stat () in
  let bytes_per_word = Sys.word_size / 8 in
  let alloc_w =
    q.Gc.minor_words -. p0.p_minor
    +. (q.Gc.major_words -. p0.p_major)
    -. (q.Gc.promoted_words -. p0.p_promoted)
  in
  [
    ("cpu_s", F (Sys.time () -. p0.p_cpu));
    ("gc.minor_words", F (q.Gc.minor_words -. p0.p_minor));
    ("gc.major_words", F (q.Gc.major_words -. p0.p_major));
    ("gc.promoted_words", F (q.Gc.promoted_words -. p0.p_promoted));
    ("gc.alloc_bytes", F (alloc_w *. float_of_int bytes_per_word));
    ("gc.minor_collections", I (q.Gc.minor_collections - p0.p_minor_col));
    ("gc.major_collections", I (q.Gc.major_collections - p0.p_major_col));
    ("gc.heap_words", I q.Gc.heap_words);
  ]

type frame = {
  id : int;
  sname : string;
  start : float;
  prof : prof_start option;
  mutable fattrs : (string * value) list; (* reverse order of addition *)
}

let next_span_id = Atomic.make 1

(* Per-domain stack of open frames; workers get fresh empty stacks. *)
let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let emit_span s ~parent ~ok fr =
  let dur = now_s () -. fr.start in
  (* Profiling deltas are closed out before serialization so they appear
     with the user attributes; reversal below restores addition order. *)
  (match fr.prof with
  | None -> ()
  | Some p0 -> fr.fattrs <- List.rev_append (alloc_attrs p0) fr.fattrs);
  let b = Buffer.create 160 in
  Buffer.add_string b "{\"type\":\"span\",\"id\":";
  Buffer.add_string b (string_of_int fr.id);
  Buffer.add_string b ",\"parent\":";
  Buffer.add_string b (string_of_int parent);
  Buffer.add_string b ",\"domain\":";
  Buffer.add_string b (string_of_int (Domain.self () :> int));
  Buffer.add_string b ",\"name\":";
  buf_add_json_string b fr.sname;
  Buffer.add_string b ",\"start_s\":";
  buf_add_json_float b fr.start;
  Buffer.add_string b ",\"dur_s\":";
  buf_add_json_float b dur;
  Buffer.add_string b ",\"ok\":";
  Buffer.add_string b (if ok then "true" else "false");
  Buffer.add_string b ",\"attrs\":";
  buf_add_attrs b (List.rev fr.fattrs);
  Buffer.add_char b '}';
  emit_line s (Buffer.contents b)

let with_span ?(attrs = []) name f =
  match Atomic.get sink with
  | None -> f () (* the fast path: one atomic load, no allocation *)
  | Some s ->
      let stack = Domain.DLS.get stack_key in
      let parent = match !stack with [] -> 0 | fr :: _ -> fr.id in
      (* GC counters are read before the start timestamp so the (small)
         cost of the reading itself lands outside the span's wall time;
         record-field evaluation order is unspecified, so sequence
         explicitly. *)
      let prof =
        if Atomic.get profile_flag then Some (prof_now ()) else None
      in
      let fr =
        {
          id = Atomic.fetch_and_add next_span_id 1;
          sname = name;
          start = now_s ();
          prof;
          fattrs = List.rev attrs;
        }
      in
      stack := fr :: !stack;
      let finish ok =
        (match !stack with
        | top :: rest when top == fr -> stack := rest
        | _ ->
            (* A child span escaped (e.g. an effect-based jump): drop
               frames down to ours so the stack cannot grow unbounded. *)
            let rec pop = function
              | top :: rest when top != fr -> pop rest
              | _ :: rest -> rest
              | [] -> []
            in
            stack := pop !stack);
        emit_span s ~parent ~ok fr
      in
      (match f () with
      | v ->
          finish true;
          v
      | exception e ->
          fr.fattrs <- ("error", S (Printexc.to_string e)) :: fr.fattrs;
          finish false;
          raise e)

let add_span_attr key v =
  if tracing () then
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | fr :: _ -> fr.fattrs <- (key, v) :: fr.fattrs

let current_span_id () =
  if not (tracing ()) then 0
  else match !(Domain.DLS.get stack_key) with [] -> 0 | fr :: _ -> fr.id

let alloc_span_id () = Atomic.fetch_and_add next_span_id 1

(* Backdated spans: event-loop callers (loadgen drivers, the server's
   queue-wait accounting) measure extents with timestamps and emit the
   span after the fact.  The span never lives on the domain stack, so it
   cannot parent a [with_span]; explicit [?parent] wiring links these
   trees together instead. *)
let emit_span_at ?(attrs = []) ?parent ?id ?(ok = true) ~name ~start_s
    ~dur_s () =
  match Atomic.get sink with
  | None -> 0
  | Some s ->
      let parent =
        match parent with
        | Some p -> p
        | None -> (
            match !(Domain.DLS.get stack_key) with
            | [] -> 0
            | fr :: _ -> fr.id)
      in
      let id = match id with Some i -> i | None -> alloc_span_id () in
      let b = Buffer.create 160 in
      Buffer.add_string b "{\"type\":\"span\",\"id\":";
      Buffer.add_string b (string_of_int id);
      Buffer.add_string b ",\"parent\":";
      Buffer.add_string b (string_of_int parent);
      Buffer.add_string b ",\"domain\":";
      Buffer.add_string b (string_of_int (Domain.self () :> int));
      Buffer.add_string b ",\"name\":";
      buf_add_json_string b name;
      Buffer.add_string b ",\"start_s\":";
      buf_add_json_float b start_s;
      Buffer.add_string b ",\"dur_s\":";
      buf_add_json_float b dur_s;
      Buffer.add_string b ",\"ok\":";
      Buffer.add_string b (if ok then "true" else "false");
      Buffer.add_string b ",\"attrs\":";
      buf_add_attrs b attrs;
      Buffer.add_char b '}';
      emit_line s (Buffer.contents b);
      id

(* -------------------------------------------------------------- metrics *)

type counter = { cname : string; c : int Atomic.t }
type gauge = { gname : string; glock : Mutex.t; mutable g : float }

(* Histograms use fixed log2-scale buckets: bucket [i] (1 <= i <= 62)
   holds observations in [2^(i-31), 2^(i-30)); bucket 0 holds everything
   non-positive (and NaN), bucket 63 everything >= 2^32.  For durations
   in seconds that resolves ~0.5 ns to ~4 x 10^9 s — far beyond anything
   observed — with exact integer bucket counts under concurrency. *)
let num_buckets = 64

let bucket_of v =
  if not (v > 0.) then 0 (* non-positive and NaN *)
  else if v >= 4294967296. (* 2^32 = lower edge of the overflow bucket;
                              also keeps int_of_float off infinity *) then
    num_buckets - 1
  else begin
    let e = int_of_float (Float.floor (Numerics.log2 v)) in
    let i = e + 31 in
    if i < 1 then 1 else if i > num_buckets - 2 then num_buckets - 2 else i
  end

let bucket_lower_bound i =
  if i <= 0 then neg_infinity else Float.pow 2. (float_of_int (i - 31))

type histogram = {
  hname : string;
  buckets : int Atomic.t array;
  hcount : int Atomic.t;
  hlock : Mutex.t; (* guards the float accumulators only *)
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let register name build describe =
  Mutex.lock registry_lock;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m = build () in
        Hashtbl.replace registry name m;
        m
  in
  Mutex.unlock registry_lock;
  match describe m with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Obs: metric %S already registered with another type"
           name)

let counter name =
  register name
    (fun () -> C { cname = name; c = Atomic.make 0 })
    (function C c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () -> G { gname = name; glock = Mutex.create (); g = 0. })
    (function G g -> Some g | _ -> None)

let histogram name =
  register name
    (fun () ->
      H
        {
          hname = name;
          buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
          hcount = Atomic.make 0;
          hlock = Mutex.create ();
          hsum = 0.;
          hmin = infinity;
          hmax = neg_infinity;
        })
    (function H h -> Some h | _ -> None)

let add c k = if k <> 0 then ignore (Atomic.fetch_and_add c.c k)
let incr c = ignore (Atomic.fetch_and_add c.c 1)
let counter_value c = Atomic.get c.c
let counter_name c = c.cname
let reset_counter c = Atomic.set c.c 0

let set_gauge g v =
  Mutex.lock g.glock;
  g.g <- v;
  Mutex.unlock g.glock

let gauge_value g = g.g

let observe h v =
  ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.hcount 1);
  Mutex.lock h.hlock;
  (* NaN observations are counted (bucket 0) but excluded from the sum:
     one bad sample must not poison the mean of thousands. *)
  if not (Float.is_nan v) then h.hsum <- h.hsum +. v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v;
  Mutex.unlock h.hlock

let histogram_count h = Atomic.get h.hcount
let histogram_sum h = h.hsum
let histogram_bucket h i = Atomic.get h.buckets.(i)

(* Quantiles from the log2 buckets: the smallest bucket whose cumulative
   count reaches the rank, estimated at the bucket's geometric midpoint
   (sqrt 2 times its lower edge) — the same estimator Obs_tools.Trace
   applies to recorded traces, so online and offline p50/p99 agree. *)
let histogram_quantile h q =
  let count = Atomic.get h.hcount in
  if count = 0 then 0.
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let rank = int_of_float (Float.round (q *. float_of_int (count - 1))) in
    let result = ref 0. and seen = ref 0 in
    (try
       for b = 0 to num_buckets - 1 do
         seen := !seen + Atomic.get h.buckets.(b);
         if !seen > rank then begin
           result :=
             (if b <= 0 then 0.
              else if b >= num_buckets - 1 then bucket_lower_bound b
              else bucket_lower_bound b *. Float.sqrt 2.);
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let time_histogram h f =
  let t0 = now_s () in
  Fun.protect ~finally:(fun () -> observe h (now_s () -. t0)) f

let sorted_metrics () =
  Mutex.lock registry_lock;
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let metric_names () = List.map fst (sorted_metrics ())

type metric_snapshot =
  | Counter_snapshot of int
  | Gauge_snapshot of float
  | Histogram_snapshot of {
      count : int;
      sum : float;
      buckets : (int * int) list;
    }

let snapshot () =
  List.map
    (fun (name, m) ->
      let v =
        match m with
        | C c -> Counter_snapshot (Atomic.get c.c)
        | G g -> Gauge_snapshot g.g
        | H h ->
            let buckets = ref [] in
            for i = num_buckets - 1 downto 0 do
              let n = Atomic.get h.buckets.(i) in
              if n > 0 then buckets := (i, n) :: !buckets
            done;
            Histogram_snapshot
              { count = Atomic.get h.hcount; sum = h.hsum;
                buckets = !buckets }
      in
      (name, v))
    (sorted_metrics ())

let reset_metrics () =
  List.iter
    (fun (_, m) ->
      match m with
      | C c -> Atomic.set c.c 0
      | G g -> set_gauge g 0.
      | H h ->
          Mutex.lock h.hlock;
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.hcount 0;
          h.hsum <- 0.;
          h.hmin <- infinity;
          h.hmax <- neg_infinity;
          Mutex.unlock h.hlock)
    (sorted_metrics ())

let flush_metrics () =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      List.iter
        (fun (name, m) ->
          let b = Buffer.create 96 in
          (match m with
          | C c ->
              Buffer.add_string b "{\"type\":\"counter\",\"name\":";
              buf_add_json_string b name;
              Buffer.add_string b ",\"value\":";
              Buffer.add_string b (string_of_int (Atomic.get c.c));
              Buffer.add_char b '}'
          | G g ->
              Buffer.add_string b "{\"type\":\"gauge\",\"name\":";
              buf_add_json_string b name;
              Buffer.add_string b ",\"value\":";
              buf_add_json_float b g.g;
              Buffer.add_char b '}'
          | H h ->
              Buffer.add_string b "{\"type\":\"histogram\",\"name\":";
              buf_add_json_string b name;
              Buffer.add_string b ",\"count\":";
              Buffer.add_string b (string_of_int (Atomic.get h.hcount));
              Buffer.add_string b ",\"sum\":";
              buf_add_json_float b h.hsum;
              Buffer.add_string b ",\"buckets\":{";
              let first = ref true in
              Array.iteri
                (fun i bk ->
                  let v = Atomic.get bk in
                  if v > 0 then begin
                    if not !first then Buffer.add_char b ',';
                    first := false;
                    buf_add_json_string b (string_of_int i);
                    Buffer.add_char b ':';
                    Buffer.add_string b (string_of_int v)
                  end)
                h.buckets;
              Buffer.add_string b "}}");
          emit_line s (Buffer.contents b))
        (sorted_metrics ())

(* ------------------------------------------------------------- summary *)

let summary_table () =
  let t =
    Table.create ~title:"observability: metrics registry"
      [ "metric"; "kind"; "value"; "detail" ]
  in
  List.iter
    (fun (name, m) ->
      match m with
      | C c ->
          Table.add_row t
            [ Table.S name; Table.S "counter"; Table.I (Atomic.get c.c);
              Table.S "" ]
      | G g ->
          Table.add_row t
            [ Table.S name; Table.S "gauge"; Table.F g.g; Table.S "" ]
      | H h ->
          let n = Atomic.get h.hcount in
          let detail =
            if n = 0 then "empty"
            else
              Printf.sprintf "mean %.3g, min %.3g, max %.3g"
                (h.hsum /. float_of_int n)
                h.hmin h.hmax
          in
          Table.add_row t
            [ Table.S name; Table.S "histogram"; Table.I n; Table.S detail ])
    (sorted_metrics ());
  t

let print_summary () = Table.print (summary_table ())
