(* E31 — scheduling under mobility churn (ROADMAP item 1).

   A 40-step random-waypoint trace over a shadowed geometric base; the
   incremental engine carries ζ/φ/γ across steps and is differentially
   checked against uncached full recompute at EVERY step — the experiment
   fails on the first bit that differs.  On top of the trace: the t=0
   capacity schedule is re-checked for SINR feasibility each step, and
   longest-queue-first dynamic scheduling is re-run on the drifted final
   space. *)

module T = Core.Prelude.Table
module Rng = Core.Prelude.Rng
module Decay = Core.Decay
module Evolve = Decay.Evolve
module Incremental = Decay.Incremental
module Metricity = Decay.Metricity
module Fading = Decay.Fading
module I = Core.Sinr.Instance
module Feas = Core.Sinr.Feasibility
module Power = Core.Sinr.Power
module Dynamic = Core.Sched.Dynamic

let steps = 40
let r_sep = 4.
let uctx = Decay.Ctx.uncached

let witness_eq (a : Metricity.witness) (b : Metricity.witness) =
  a.x = b.x && a.y = b.y && a.z = b.z
  && Int64.equal (Int64.bits_of_float a.value) (Int64.bits_of_float b.value)

(* One full-recompute comparison; returns true when bit-identical. *)
let differential_ok (res : Incremental.result) space =
  let zw = Metricity.zeta_witness ~ctx:uctx space in
  let pw = Metricity.phi_witness ~ctx:uctx space in
  let g_ok =
    match res.Incremental.gamma with
    | None -> false
    | Some g ->
        Int64.equal
          (Int64.bits_of_float g.Incremental.g_value)
          (Int64.bits_of_float (Fading.gamma ~ctx:uctx space ~r:r_sep))
  in
  witness_eq res.Incremental.zeta zw
  && witness_eq res.Incremental.phi pw
  && g_ok

let lqf_stable space pairs ~zeta seed =
  let inst = I.make ~zeta space pairs in
  let rates = Array.make (List.length pairs) 0.12 in
  let res =
    Dynamic.run ~slots:1500 ~policy:Dynamic.Longest_queue_first
      ~arrival_rates:rates (Rng.create seed) inst
  in
  res.Dynamic.stable

let e31_churn_scheduling () =
  let cfg =
    {
      Evolve.default with
      n = 36;
      side = 25.;
      speed_min = 0.5;
      speed_max = 1.5;
      pause_min = 8.;
      pause_max = 20.;
      corr_dist = 8.;
      shadow_std_db = 4.;
    }
  in
  let ev = Evolve.create ~name:"e31" ~seed:3101 cfg in
  let inc = Incremental.create ~ctx:uctx ~r:r_sep (Evolve.space ev) in
  let res0 = Incremental.current inc in
  let zeta0 = res0.Incremental.zeta.Metricity.value in
  let gamma0 =
    match res0.Incremental.gamma with Some g -> g.Incremental.g_value | None -> 0.
  in
  (* A t=0 workload: links sampled from the initial space, scheduled by
     exact capacity search. *)
  let inst0 =
    I.random_links_in_space ~zeta:zeta0 (Rng.create 3102) ~n_links:8
      ~max_decay:600. (Evolve.space ev)
  in
  let pairs =
    Array.to_list
      (Array.map
         (fun l -> (l.Core.Sinr.Link.sender, l.Core.Sinr.Link.receiver))
         inst0.I.links)
  in
  let schedule = Core.Capacity.Exact.capacity inst0 in
  let sched_ids =
    List.map (fun l -> l.Core.Sinr.Link.id) schedule
  in
  let power = Power.uniform 1. in
  let t =
    T.create ~title:"E31  Churn: incremental analysis + schedule survival under mobility"
      [ "step"; "dirty"; "zeta"; "phi"; "gamma"; "diff"; "sched ok" ]
  in
  let row step dirty (res : Incremental.result) diff feas =
    T.add_row t
      [
        T.I step; T.I dirty;
        T.F res.Incremental.zeta.Metricity.value;
        T.F res.Incremental.phi.Metricity.value;
        T.F
          (match res.Incremental.gamma with
          | Some g -> g.Incremental.g_value
          | None -> nan);
        T.S (if diff then "exact" else "MISMATCH");
        T.S (if feas then "feasible" else "broken");
      ]
  in
  let mismatches = ref 0 in
  let survival = ref steps in
  let max_dzeta = ref 0. and max_dgamma = ref 0. in
  let check_feasible space (res : Incremental.result) =
    let inst_t =
      I.make ~zeta:res.Incremental.zeta.Metricity.value space pairs
    in
    let links_t =
      List.filter
        (fun l -> List.mem l.Core.Sinr.Link.id sched_ids)
        (Array.to_list inst_t.I.links)
    in
    Feas.is_feasible inst_t power links_t
  in
  let diff0 = differential_ok res0 (Evolve.space ev) in
  if not diff0 then incr mismatches;
  row 0 0 res0 diff0 (check_feasible (Evolve.space ev) res0);
  for s = 1 to steps do
    let space, dirty = Evolve.step ev in
    let res = Incremental.step inc ~dirty space in
    let diff = differential_ok res space in
    if not diff then incr mismatches;
    let feas = check_feasible space res in
    if (not feas) && !survival = steps then survival := s - 1;
    max_dzeta :=
      Float.max !max_dzeta
        (Float.abs (res.Incremental.zeta.Metricity.value -. zeta0));
    (match res.Incremental.gamma with
    | Some g ->
        max_dgamma :=
          Float.max !max_dgamma (Float.abs (g.Incremental.g_value -. gamma0))
    | None -> ());
    if s mod 5 = 0 then row s (Array.length dirty) res diff feas
  done;
  let final = Incremental.current inc in
  let stable0 = lqf_stable inst0.I.space pairs ~zeta:zeta0 3103
  and stable_t =
    lqf_stable (Incremental.space inc) pairs
      ~zeta:final.Incremental.zeta.Metricity.value 3104
  in
  T.print t;
  let st = Incremental.stats inc in
  Printf.printf
    "drift: max |dzeta| = %.3f, max |dgamma| = %.3f; schedule survived %d/%d \
     steps; LQF stable t=0: %b, t=%d: %b\n\
     incremental: %d/%d triples swept (savings %.1fx), gamma recomputed \
     %d/%d listeners\n%!"
    !max_dzeta !max_dgamma !survival steps stable0 steps stable_t
    st.Incremental.triples_swept st.Incremental.triples_full
    (Incremental.savings st) st.Incremental.gamma_recomputed
    st.Incremental.gamma_total;
  Outcome.make
    ~measured:(float_of_int !survival)
    ~bound:1.
    ~detail:
      (Printf.sprintf
         "steps the t=0 schedule stayed feasible (of %d; %d differential \
          mismatches; %.1fx sweep savings)"
         steps !mismatches (Incremental.savings st))
    (!mismatches = 0 && !survival >= 1 && stable0 && stable_t)
