(** Experiments E21-E22: the online and contention-resolution families of
    the paper's transfer list ([15]; [45]). *)

val e21_online_capacity : unit -> Outcome.t
(** Online admission under random and adversarial arrival orders: the
    separation-guarded rule holds its competitive ratio where the naive
    feasibility-only rule degrades. *)

val e22_contention_resolution : unit -> Outcome.t
(** Distributed contention resolution: rounds to drain one packet per link
    under fixed-probability and exponential-backoff policies, across
    densities and decay spaces. *)
