module I = Core.Sinr.Instance
module Pw = Core.Sinr.Power
module T = Core.Prelude.Table
module Rng = Core.Prelude.Rng
module Stats = Core.Prelude.Stats

(* E15 — power regimes.  Fix planar instances whose link lengths span a
   growing range; compare the exact capacity under each fixed oblivious
   assignment and feasibility of the whole set under optimal power
   control.  The classical picture: with near-equal lengths all regimes
   tie; with high dispersion, mean power dominates uniform. *)
let e15_power_regimes () =
  let t = T.create ~title:"E15  Power regimes: exact capacity under oblivious assignments (length dispersion sweep)"
      [ "lmax/lmin"; "uniform"; "mean (sqrt)"; "linear"; "best oblivious";
        "pc feasible (all)" ]
  in
  let ok = ref true in
  let worst_shortfall = ref neg_infinity in
  List.iter
    (fun spread ->
      let caps = Array.make 3 0. in
      let pc_all = ref 0 in
      let trials = [ 1101; 1102; 1103 ] in
      List.iter
        (fun seed ->
          let inst =
            I.random_planar (Rng.create seed) ~n_links:12 ~side:20. ~alpha:3.
              ~lmin:1. ~lmax:spread
          in
          let cap p =
            List.length (Core.Capacity.Exact.capacity ~power:p inst)
          in
          caps.(0) <- caps.(0) +. float_of_int (cap (Pw.uniform 1.));
          caps.(1) <- caps.(1) +. float_of_int (cap (Pw.mean ~coeff:1.));
          caps.(2) <- caps.(2) +. float_of_int (cap (Pw.linear ~coeff:1.));
          if
            Core.Sinr.Power_control.is_feasible inst
              (Array.to_list inst.I.links)
          then incr pc_all)
        trials;
      let k = float_of_int (List.length trials) in
      let u = caps.(0) /. k and m = caps.(1) /. k and l = caps.(2) /. k in
      let best = if m >= u && m >= l then "mean" else if u >= l then "uniform" else "linear" in
      (* Claim check: mean power is never worse than both extremes by more
         than one link on average (it interpolates them). *)
      worst_shortfall := Float.max !worst_shortfall (Float.min u l -. m);
      if m +. 1. < Float.min u l then ok := false;
      T.add_row t
        [ T.F spread; T.F2 u; T.F2 m; T.F2 l; T.S best;
          T.S (Printf.sprintf "%d/%d" !pc_all (List.length trials)) ])
    [ 1.2; 4.; 16.; 64. ];
  T.print t;
  Outcome.make ~measured:!worst_shortfall ~bound:1.
    ~detail:"worst mean-power shortfall vs best extreme regime (links)"
    !ok

(* E16 — dynamic packet scheduling: stability frontier of LQF vs random
   access as the per-link arrival rate lambda grows. *)
let e16_dynamic_stability () =
  let t = T.create ~title:"E16  Dynamic scheduling: stability vs arrival rate (12 links, planar alpha=3)"
      [ "lambda"; "LQF backlog"; "LQF stable"; "RA backlog"; "RA stable" ]
  in
  let inst =
    I.random_planar (Rng.create 1201) ~n_links:12 ~side:18. ~alpha:3. ~lmin:1.
      ~lmax:2.
  in
  let n = Array.length inst.I.links in
  let run policy lambda seed =
    Core.Sched.Dynamic.run ~slots:2000 ~policy
      ~arrival_rates:(Array.make n lambda) (Rng.create seed) inst
  in
  let ok = ref true in
  let lqf_low_stable = ref false and lqf_high_unstable = ref false in
  List.iter
    (fun lambda ->
      let lqf = run Core.Sched.Dynamic.Longest_queue_first lambda 1202 in
      let ra = run (Core.Sched.Dynamic.Random_access 0.25) lambda 1203 in
      if lambda <= 0.15 && lqf.Core.Sched.Dynamic.stable then
        lqf_low_stable := true;
      if lambda >= 0.9 && not lqf.Core.Sched.Dynamic.stable then
        lqf_high_unstable := true;
      T.add_row t
        [ T.F lambda; T.F2 lqf.Core.Sched.Dynamic.mean_backlog;
          T.S (string_of_bool lqf.Core.Sched.Dynamic.stable);
          T.F2 ra.Core.Sched.Dynamic.mean_backlog;
          T.S (string_of_bool ra.Core.Sched.Dynamic.stable) ])
    [ 0.05; 0.15; 0.3; 0.5; 0.7; 0.9 ];
  if not (!lqf_low_stable && !lqf_high_unstable) then ok := false;
  T.print t;
  Outcome.make
    ~detail:"LQF stable at lambda <= 0.15 and unstable at lambda >= 0.9"
    !ok

(* E17 — Rayleigh fading: closed form vs Monte-Carlo, and expected fading
   throughput of the threshold-model capacity sets. *)
let e17_rayleigh () =
  let t = T.create ~title:"E17  Rayleigh reduction [10]: closed form vs MC; threshold sets under fading"
      [ "seed"; "closed form"; "monte carlo"; "|S| threshold"; "E[succ] fading";
        "retention" ]
  in
  let ok = ref true in
  let worst_err = ref 0. in
  List.iter
    (fun seed ->
      let inst =
        I.random_planar (Rng.create seed) ~n_links:10 ~side:25. ~alpha:3.
          ~lmin:1. ~lmax:2.
      in
      let p = Pw.uniform 1. in
      let all = Array.to_list inst.I.links in
      let lv = List.hd all in
      let closed =
        Core.Sinr.Rayleigh.success_probability inst p ~interferers:all lv
      in
      let mc =
        Core.Sinr.Rayleigh.simulate_success_rate ~samples:20000
          (Rng.create (seed + 7)) inst p ~interferers:all lv
      in
      worst_err := Float.max !worst_err (Float.abs (closed -. mc));
      if Float.abs (closed -. mc) > 0.02 then ok := false;
      (* Take the threshold-model capacity set and score it under fading:
         a 3 dB SINR margin keeps most of the expected throughput. *)
      let s = Core.Capacity.Alg1.run inst in
      let expected = Core.Sinr.Rayleigh.expected_successes inst p s in
      let retention = expected /. float_of_int (max 1 (List.length s)) in
      if retention < 0.4 then ok := false;
      T.add_row t
        [ T.I seed; T.F4 closed; T.F4 mc; T.I (List.length s); T.F2 expected;
          T.F2 retention ])
    [ 1301; 1302; 1303 ];
  T.print t;
  print_endline
    "E17 reading: fading turns the feasibility predicate into a product formula the\n\
     library evaluates exactly; threshold-model selections remain good under it.";
  print_newline ();
  Outcome.make ~measured:!worst_err ~bound:0.02
    ~detail:"max |closed form - Monte Carlo|; retention >= 0.4 on all seeds"
    !ok
