module D = Core.Decay.Decay_space
module Met = Core.Decay.Metricity
module Dim = Core.Decay.Dimension
module Sp = Core.Decay.Spaces
module I = Core.Sinr.Instance
module F = Core.Sinr.Feasibility
module Pw = Core.Sinr.Power
module Sep = Core.Sinr.Separation
module Part = Core.Sinr.Partition
module T = Core.Prelude.Table
module Rng = Core.Prelude.Rng
module Num = Core.Prelude.Numerics
module Stats = Core.Prelude.Stats

(* E4 — Theorem 3: capacity on MIS spaces is exactly the independence
   number under uniform power and under power control; polynomial
   heuristics inherit the MIS greedy gap, which grows with n (the
   empirical shadow of the 2^zeta(1-o(1)) hardness). *)
let e4_thm3_hardness () =
  let t = T.create ~title:"E4  Thm 3: capacity = MIS on graph-derived spaces (hard even with power control)"
      [ "n"; "zeta"; "lg 2n"; "alpha(G)"; "cap uniform"; "cap power-ctl";
        "greedy"; "OPT/greedy"; "correspondence" ]
  in
  let ok = ref true in
  let worst_dev = ref 0 in
  List.iter
    (fun (n, seed) ->
      let g = Core.Graph.Graph.random (Rng.create seed) n 0.5 in
      let alpha_g = Core.Graph.Mis.independence_number g in
      let space, pairs = Sp.mis_construction g in
      let zeta = Met.zeta space in
      let inst = I.equi_decay_of_space ~zeta space pairs in
      let cap_u = List.length (Core.Capacity.Exact.capacity inst) in
      let cap_pc = List.length (Core.Capacity.Exact.capacity_power_control inst) in
      let greedy = List.length (Core.Capacity.Greedy.strongest_first inst) in
      let corresponds = cap_u = alpha_g && cap_pc = alpha_g in
      worst_dev :=
        max !worst_dev (max (abs (cap_u - alpha_g)) (abs (cap_pc - alpha_g)));
      if not corresponds then ok := false;
      T.add_row t
        [ T.I n; T.F4 zeta; T.F4 (Num.log2 (2. *. float_of_int n)); T.I alpha_g;
          T.I cap_u; T.I cap_pc; T.I greedy;
          T.F2 (float_of_int alpha_g /. float_of_int (max 1 greedy));
          T.S (string_of_bool corresponds) ])
    [ (8, 301); (12, 302); (16, 303); (20, 304) ];
  T.print t;
  Outcome.make ~measured:(float_of_int !worst_dev) ~bound:0.
    ~detail:"max |capacity - alpha(G)| over sizes (uniform and power control)"
    !ok

(* E5 — the sparsification lemmas: class counts vs bounds, outputs
   verified. *)
let e5_sparsification () =
  let t = T.create ~title:"E5  Lemmas B.1/B.3/4.1: constructive partitions (counts vs bounds, outputs verified)"
      [ "alpha"; "|S|"; "B.1 classes (q=2)"; "B.1 bound"; "B.3 classes (eta=zeta)";
        "4.1 classes"; "outputs valid" ]
  in
  let ok = ref true in
  let worst_fill = ref 0. in
  List.iter
    (fun alpha ->
      let inst =
        I.random_planar (Rng.create 401) ~n_links:24 ~side:25. ~alpha ~lmin:1.
          ~lmax:2.
      in
      let p = Pw.uniform 1. in
      let feasible = Core.Capacity.Greedy.strongest_first inst in
      let q = 2. in
      let b1 = Part.strengthen inst p ~q feasible in
      let b1_bound = int_of_float (Float.ceil (2. *. q)) * int_of_float (Float.ceil (2. *. q)) in
      let b3 = Part.separate inst ~eta:inst.I.zeta feasible in
      let l41 = Part.sparsify inst p ~eta:inst.I.zeta feasible in
      let valid =
        List.for_all (fun c -> F.is_feasible_affectance ~k:q inst p c) b1
        && List.for_all (fun c -> Sep.is_separated_set inst ~eta:inst.I.zeta c) b3
        && List.for_all (fun c -> Sep.is_separated_set inst ~eta:inst.I.zeta c) l41
        && List.length b1 <= b1_bound
      in
      worst_fill :=
        Float.max !worst_fill
          (float_of_int (List.length b1) /. float_of_int b1_bound);
      if not valid then ok := false;
      T.add_row t
        [ T.F alpha; T.I (List.length feasible); T.I (List.length b1);
          T.I b1_bound; T.I (List.length b3); T.I (List.length l41);
          T.S (string_of_bool valid) ])
    [ 2.; 3.; 4.; 6. ];
  T.print t;
  Outcome.make ~measured:!worst_fill ~bound:1.
    ~detail:"worst B.1 class count / bound; all partition outputs verified"
    !ok

(* E6 — Theorem 4: amicability.  Measure the shrinkage h and constant c of
   the constructive proof across an alpha (= zeta) sweep; fit the log-log
   slope of h against zeta — polynomial (small slope), not exponential. *)
let e6_amicability () =
  let t = T.create ~title:"E6  Thm 4: amicability h(zeta) on the plane (polynomial, not exponential)"
      [ "alpha=zeta"; "mean |S|"; "mean |S'|"; "mean shrinkage h"; "mean c" ]
  in
  let alphas = [ 1.5; 2.; 3.; 4.; 6. ] in
  let hs = ref [] in
  List.iter
    (fun alpha ->
      let shr = ref [] and cs = ref [] and ss = ref [] and s's = ref [] in
      List.iter
        (fun seed ->
          let inst =
            I.random_planar (Rng.create seed) ~n_links:20 ~side:25. ~alpha
              ~lmin:1. ~lmax:2.
          in
          let feasible = Core.Capacity.Greedy.strongest_first inst in
          let r = Core.Capacity.Amicability.extract inst ~feasible in
          shr := r.Core.Capacity.Amicability.shrinkage :: !shr;
          cs := r.Core.Capacity.Amicability.max_out_affectance :: !cs;
          ss := float_of_int (List.length feasible) :: !ss;
          s's := float_of_int (List.length r.Core.Capacity.Amicability.subset) :: !s's)
        [ 501; 502; 503 ];
      let h = Stats.mean (Array.of_list !shr) in
      hs := (alpha, h) :: !hs;
      T.add_row t
        [ T.F alpha; T.F2 (Stats.mean (Array.of_list !ss));
          T.F2 (Stats.mean (Array.of_list !s's)); T.F2 h;
          T.F2 (Stats.mean (Array.of_list !cs)) ])
    alphas;
  T.print t;
  (* Log-log growth of h in zeta: an exponential law h = 2^(b*zeta) would
     give log2 h / zeta roughly constant and >= ~0.5; a polynomial law
     keeps the exponential rate of the largest zeta tiny. *)
  let _, h_max = List.hd !hs in
  let rate = Num.log2 (Float.max 1. h_max) /. 6. in
  let sub_exponential = rate < 0.5 in
  let fit =
    Stats.loglog_fit
      (Array.of_list (List.rev_map fst !hs))
      (Array.of_list (List.rev_map (fun (_, h) -> Float.max 1. h) !hs))
  in
  Printf.printf
    "E6 summary: poly fit h ~ zeta^%.2f (r2=%.2f); exponential rate at zeta=6: %.3f bits/unit (sub-exponential: %b)\n\n"
    fit.Stats.slope fit.Stats.r2 rate sub_exponential;
  Outcome.make ~measured:rate ~bound:0.5
    ~detail:"exponential rate of shrinkage h at zeta = 6 (bits per unit zeta)"
    sub_exponential

(* E7 — Theorem 5: Algorithm 1 vs optimum across alpha, against the
   general-metric greedy, on the plane. *)
let e7_capacity_approximation () =
  let t = T.create ~title:"E7  Thm 5: capacity approximation ratios on the plane (alpha sweep, OPT via B&B)"
      [ "alpha"; "mean OPT"; "ratio Alg1"; "ratio aff-greedy"; "ratio strongest";
        "alg1 worst" ]
  in
  let ok = ref true in
  let worst_overall = ref 0. in
  List.iter
    (fun alpha ->
      let r_alg1 = ref [] and r_gg = ref [] and r_sf = ref [] and opts = ref [] in
      List.iter
        (fun seed ->
          let inst =
            I.random_planar (Rng.create seed) ~n_links:16 ~side:14. ~alpha
              ~lmin:1. ~lmax:2.
          in
          let opt = List.length (Core.Capacity.Exact.capacity inst) in
          let ratio s = float_of_int opt /. float_of_int (max 1 (List.length s)) in
          opts := float_of_int opt :: !opts;
          r_alg1 := ratio (Core.Capacity.Alg1.run inst) :: !r_alg1;
          r_gg := ratio (Core.Capacity.Greedy.affectance_greedy inst) :: !r_gg;
          r_sf := ratio (Core.Capacity.Greedy.strongest_first inst) :: !r_sf)
        [ 601; 602; 603; 604 ];
      let mean l = Stats.mean (Array.of_list l) in
      let worst = List.fold_left Float.max 0. !r_alg1 in
      worst_overall := Float.max !worst_overall worst;
      (* Sub-exponential check: ratio far below 2^alpha for large alpha. *)
      if worst > Float.min 8. (2. ** alpha) then ok := false;
      T.add_row t
        [ T.F alpha; T.F2 (mean !opts); T.F2 (mean !r_alg1); T.F2 (mean !r_gg);
          T.F2 (mean !r_sf); T.F2 worst ])
    [ 2.; 3.; 4.; 6. ];
  T.print t;
  Outcome.make ~measured:!worst_overall ~bound:8.
    ~detail:"worst OPT / Alg1 ratio over the alpha sweep"
    !ok

(* E8 — Theorem 6: the two-line construction. *)
let e8_thm6_hardness () =
  let t = T.create ~title:"E8  Thm 6: two-line construction (phi = Theta(n), bounded growth, capacity = MIS)"
      [ "n"; "alpha'"; "phi"; "phi/n"; "zeta"; "indep dim"; "alpha(G)";
        "cap uniform"; "cap power-ctl"; "correspondence" ]
  in
  let ok = ref true in
  let worst_indep = ref 0 in
  List.iter
    (fun (n, alpha', seed) ->
      let g = Core.Graph.Graph.random (Rng.create seed) n 0.5 in
      let alpha_g = Core.Graph.Mis.independence_number g in
      let space, pairs = Sp.two_line g ~alpha' () in
      let phi = Met.phi space in
      let zeta = Met.zeta space in
      let inst = I.equi_decay_of_space ~zeta space pairs in
      let cap_u = List.length (Core.Capacity.Exact.capacity inst) in
      let cap_pc = List.length (Core.Capacity.Exact.capacity_power_control inst) in
      let indep = Dim.independence_dimension ~exact_limit:24 space in
      let corresponds = cap_u = alpha_g && cap_pc = alpha_g in
      worst_indep := max !worst_indep indep;
      if not (corresponds && indep <= 4) then ok := false;
      T.add_row t
        [ T.I n; T.F alpha'; T.F2 phi; T.F2 (phi /. float_of_int n); T.F2 zeta;
          T.I indep; T.I alpha_g; T.I cap_u; T.I cap_pc;
          T.S (string_of_bool corresponds) ])
    [ (6, 1., 701); (8, 1., 702); (10, 2., 703); (12, 2., 704) ];
  T.print t;
  Outcome.make ~measured:(float_of_int !worst_indep) ~bound:4.
    ~detail:"max independence dim of two-line spaces; capacity = alpha(G)"
    !ok
