(** Experiments E12-E14: the systems-side claims — distributed algorithms
    parameterized by the fading value (§3.3), the retained thresholding /
    additivity assumptions (§2.1), and the measurability story for decay
    spaces (§1, §2.2).  Each prints tables and returns an {!Outcome.t} recording whether the
    claimed qualitative relationships held. *)

val e12_distributed : unit -> Outcome.t
(** Local broadcast and the no-regret capacity game across spaces of
    increasing fading parameter: rounds/throughput degrade with gamma, and
    the algorithms run unchanged on arbitrary decay spaces. *)

val e13_thresholding : unit -> Outcome.t
(** Packet reception rate vs mean SINR: a hard step without fading and a
    steep S-curve under Rayleigh/Rician — the near-thresholding behaviour
    that justifies keeping the SINR capture assumption. *)

val e14_measurability : unit -> Outcome.t
(** Distance-decay rank correlation collapses as clutter and shadowing
    grow, while the metricity stays moderate — decay spaces remain
    well-behaved exactly when geometry stops being predictive. *)
