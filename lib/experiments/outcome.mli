(** Structured experiment verdicts.

    An experiment is more than a boolean: almost every claim in the paper is
    of the form "measured quantity m stays on the right side of bound b".
    Recording [measured] and [bound] alongside [pass] lets every consumer
    ([bg experiment], [bench/main.exe], CI logs) print measured-vs-bound
    columns and lets a regression be diagnosed from the report alone. *)

type t = {
  pass : bool;  (** did the claim hold? *)
  measured : float option;
      (** the headline measured quantity, when the experiment has one *)
  bound : float option;
      (** the bound it was compared against, when there is one *)
  detail : string;  (** one-line human description of the comparison *)
}

val make : ?measured:float -> ?bound:float -> detail:string -> bool -> t

val of_bool : ?measured:float -> ?bound:float -> detail:string -> bool -> t
(** Alias of {!make}; reads better at call sites converting an existing
    boolean verdict. *)

val leq : ?detail:string -> measured:float -> bound:float -> unit -> t
(** Pass iff [measured <= bound]; both values recorded. *)

val geq : ?detail:string -> measured:float -> bound:float -> unit -> t
(** Pass iff [measured >= bound]; both values recorded. *)

val float_cell : float option -> string
(** Render a measured/bound cell: ["-"] for [None], compact decimal
    otherwise. *)
