(** Experiments E4-E8: CAPACITY approximability as a function of the decay
    space's parameters (Theorems 3-6 and the sparsification lemmas).  Each
    prints its tables and returns a structured {!Outcome.t} verdict. *)

val e4_thm3_hardness : unit -> Outcome.t
(** Theorem 3: on MIS-derived decay spaces, feasible sets = independent
    sets (uniform power and power control), [zeta ~ lg 2n], and greedy
    capacity degrades like the MIS greedy gap. *)

val e5_sparsification : unit -> Outcome.t
(** Lemmas B.1/B.3/4.1: constructive partition sizes vs the lemmas' bounds;
    outputs re-verified against their defining predicates. *)

val e6_amicability : unit -> Outcome.t
(** Theorem 4: measured amicability parameters grow polynomially (not
    exponentially) with [zeta] on planar instances. *)

val e7_capacity_approximation : unit -> Outcome.t
(** Theorem 5: Algorithm 1 vs exact optimum across an alpha sweep on the
    plane (sub-exponential dependence) and vs the general-metric greedy. *)

val e8_thm6_hardness : unit -> Outcome.t
(** Theorem 6: the two-line construction — feasible = independent under
    both power regimes, [phi = Theta(n)], bounded growth. *)
