(** Experiment E28: ablation of Algorithm 1's design choices.

    The algorithm has three moving parts — the [zeta/2] separation test,
    the [1/2] affectance-headroom test, and the final in-affectance
    filter.  The ablation disables / varies each and measures selection
    size, feasibility rate and distance to optimum, showing which piece
    buys what (the separation test buys the Theorem 5 analysis; the
    headroom test buys feasibility; the final filter is a safety net the
    analysis needs but random instances rarely trigger). *)

val e28_alg1_ablation : unit -> Outcome.t
