(** The experiment registry: every claim-reproduction experiment of
    DESIGN.md section 5, addressable by id ("E1" .. "E28").  Used by
    [bench/main.exe] (runs everything) and by the [bg experiment] CLI
    subcommand (runs one or all). *)

type outcome = Outcome.t = {
  pass : bool;
  measured : float option;
  bound : float option;
  detail : string;
}
(** Re-exported from {!Outcome} so consumers can pattern-match through
    either path. *)

type entry = { id : string; claim : string; run : unit -> outcome }

val all : entry list
(** Every registered experiment in id order (E15+ are extension
    ablations).  The first and last ids of this list are the source of
    truth for the advertised range — never hard-code it. *)

val find : string -> entry option
(** Case-insensitive lookup by id. *)

val run_all : unit -> (string * outcome) list
(** Run every experiment in order (tables go to stdout); returns the
    per-experiment outcomes. *)

val all_pass : (string * outcome) list -> bool
(** Did every experiment pass? *)

val print_verdicts : (string * outcome) list -> unit
(** Print the measured-vs-bound verdict table to stdout. *)
