(** Experiment E23: flexible data rates [43] and cognitive-radio admission
    [33] — the last two named families of Proposition 1's transfer list. *)

val e23_rates_and_cognitive : unit -> Outcome.t
(** Rate-scheduling slot counts vs demand and density; secondary admission
    never harming primaries, greedy vs exact admitted counts. *)
