(** Experiments E18-E20: application-layer families the paper's §2.3 lists
    as transferring to decay spaces — spectrum auctions [38, 37], conflict
    graphs [61, 60], and the remaining §3.3 protocol families (broadcast
    [13], coloring [67], dominating set [55]) together with the §2.2
    measurement story (sampling estimator). *)

val e18_spectrum_auction : unit -> Outcome.t
(** Truthful greedy auction: winners feasible, payments critical and
    bid-independent, welfare vs the exact optimum across an alpha sweep. *)

val e19_conflict_graphs : unit -> Outcome.t
(** Conflict-graph scheduling fidelity and capacity over-estimation as
    density and metricity grow. *)

val e20_protocol_suite : unit -> Outcome.t
(** Broadcast, coloring and dominating set on planar vs adversarial vs
    measured spaces, plus RSSI-sampling estimator convergence. *)
