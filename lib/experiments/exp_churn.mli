(** Experiment E31: scheduling under mobility churn.

    Drives a seeded {!Core.Decay.Evolve} trace, maintains ζ/φ/γ with
    {!Core.Decay.Incremental} (differentially checked against full
    recompute at every step), and asks the ROADMAP's churn questions: how
    fast do the parameters drift, how long does a schedule computed at
    t=0 stay SINR-feasible, and does dynamic (E16/E21-style) scheduling
    still stabilize on the drifted space? *)

val e31_churn_scheduling : unit -> Outcome.t
(** Pass iff every differential check is bit-exact, the t=0 schedule
    survives at least one step, and longest-queue-first stays stable at
    modest load on both the initial and the final space.  [measured] is
    the number of steps the t=0 schedule stayed feasible; [bound] is the
    1-step survival floor. *)
