(** Experiment E27: dimension parameters vs the ambient dimension.
    Welzl's kissing-number bound on independence (§4.1) and Definition
    3.3's fading threshold are checked in R^2 against R^3: independence
    stays within the respective kissing numbers (6 and 12), the Assouad
    estimate tracks [dim / alpha], and [alpha > dim] marks the fading
    boundary in each ambient dimension. *)

val e27_ambient_dimension : unit -> Outcome.t
