module D = Core.Decay.Decay_space
module Ctx = Core.Decay.Ctx
module Met = Core.Decay.Metricity
module Dim = Core.Decay.Dimension
module Fad = Core.Decay.Fading
module Sp = Core.Decay.Spaces
module I = Core.Sinr.Instance
module T = Core.Prelude.Table
module Rng = Core.Prelude.Rng
module Num = Core.Prelude.Numerics

let ids links =
  List.sort compare (List.map (fun l -> l.Core.Sinr.Link.id) links)

(* E1 — Proposition 1: theory transfer.  GEO-SINR decay spaces have
   zeta = alpha, and any algorithm run through the induced quasi-metric
   (with path loss zeta) reproduces its direct run on the decay space. *)
let e1_theory_transfer () =
  let t = T.create ~title:"E1  Prop. 1: theory transfer (GEO-SINR embeds; quasi-metric run = direct run)"
      [ "alpha"; "zeta(D)"; "|Alg1 direct|"; "|Alg1 via quasi-metric|"; "identical" ]
  in
  let ok = ref true in
  let worst_dev = ref 0. in
  List.iter
    (fun alpha ->
      let inst =
        I.random_planar (Rng.create 101) ~n_links:20 ~side:40. ~alpha ~lmin:1.
          ~lmax:3.
      in
      let zeta = Met.zeta inst.I.space in
      let direct = Core.Capacity.Alg1.run inst in
      let m, z = Core.Decay.Quasi_metric.induce ~zeta inst.I.space in
      let space' = Core.Decay.Quasi_metric.round_trip ~zeta:z m in
      let pairs =
        Array.to_list
          (Array.map
             (fun l -> (l.Core.Sinr.Link.sender, l.Core.Sinr.Link.receiver))
             inst.I.links)
      in
      let via = Core.Capacity.Alg1.run (I.make ~zeta:z space' pairs) in
      let same = ids direct = ids via in
      worst_dev := Float.max !worst_dev (Float.abs (zeta -. alpha));
      if not (same && Float.abs (zeta -. alpha) < 0.01) then ok := false;
      T.add_row t
        [ T.F alpha; T.F4 zeta; T.I (List.length direct); T.I (List.length via);
          T.S (string_of_bool same) ])
    [ 2.; 3.; 4. ];
  T.print t;
  Outcome.make ~measured:!worst_dev ~bound:0.01
    ~detail:"max |zeta - alpha| over alpha sweep; runs must also coincide"
    !ok

(* E2 — Theorem 2: gamma(r) <= C 2^(A+1) (zetahat(2-A) - 1) on fading
   spaces.  The constant C is calibrated from the measured packing growth
   g(q) <= C q^A. *)
let e2_fading_bound () =
  let t = T.create ~title:"E2  Thm 2: fading parameter vs closed-form bound on doubling spaces"
      [ "space"; "alpha"; "A (est)"; "C (est)"; "r"; "gamma(r)"; "bound"; "holds" ]
  in
  let ok = ref true in
  let worst_ratio = ref 0. in
  let qs = [ 2.; 4.; 8. ] in
  List.iter
    (fun (name, alpha, space) ->
      let a = Dim.assouad ~qs space in
      let a = Float.min a 0.95 in
      (* Calibrate C as the worst measured g(q) / q^A. *)
      let c =
        List.fold_left
          (fun acc q ->
            let g = float_of_int (Dim.packing_growth space ~q) in
            Float.max acc (g /. (q ** a)))
          1. qs
      in
      List.iter
        (fun r ->
          let gamma = Fad.gamma ~ctx:(Ctx.make ~exact_limit:18 ()) space ~r in
          let bound = Fad.theorem2_bound ~c ~a in
          let holds = gamma <= bound +. 1e-9 in
          worst_ratio := Float.max !worst_ratio (gamma /. bound);
          if not holds then ok := false;
          T.add_row t
            [ T.S name; T.F alpha; T.F4 a; T.F2 c; T.F r; T.F4 gamma;
              T.F4 bound; T.S (string_of_bool holds) ])
        [ 1.; 4. ])
    [
      ("grid 6x6", 3., D.of_points ~alpha:3. (Sp.grid_points ~rows:6 ~cols:6 ~spacing:1.));
      ("grid 6x6", 4., D.of_points ~alpha:4. (Sp.grid_points ~rows:6 ~cols:6 ~spacing:1.));
      ("random 30", 3., D.of_points ~alpha:3. (Sp.random_points (Rng.create 7) ~n:30 ~side:6.));
      ("random 30", 4.5, D.of_points ~alpha:4.5 (Sp.random_points (Rng.create 7) ~n:30 ~side:6.));
    ];
  T.print t;
  Outcome.make ~measured:!worst_ratio ~bound:1.
    ~detail:"worst gamma(r) / theorem-2 bound over spaces and separations"
    !ok

(* E3 — the star example of section 3.4: doubling dimension grows with k
   while interference at the close leaf stays bounded (and the far-leaf
   share vanishes). *)
let e3_star_example () =
  let t = T.create ~title:"E3  Sec. 3.4 star: unbounded dimension, bounded fading value"
      [ "k"; "quasi-doubling A'"; "gamma_z(x_-1, r)"; "far-leaf share"; "vanishing" ]
  in
  let ok = ref true in
  let r = 4. in
  let last_g = ref 0. in
  let prev_share = ref infinity in
  List.iter
    (fun k ->
      let space = Sp.star ~k ~r in
      let a' = Dim.quasi_doubling ~zeta:1. space in
      let g, witness = Fad.gamma_z ~exact_limit:60 space ~z:1 ~r in
      let leaves = List.filter (fun x -> x >= 2) witness in
      let share = r *. Fad.interference_at space ~z:1 ~senders:leaves ~power:1. in
      let vanishing = share < !prev_share in
      prev_share := share;
      last_g := g;
      if not (vanishing && g < 2.) then ok := false;
      T.add_row t
        [ T.I k; T.F4 a'; T.F4 g; T.F4 share; T.S (string_of_bool vanishing) ])
    [ 4; 8; 16; 32 ];
  T.print t;
  Outcome.make ~measured:!last_g ~bound:2.
    ~detail:"gamma_z at the close leaf for k = 32; far-leaf share must vanish"
    !ok

(* E9 — zeta vs phi across the zoo; the three-point family separates them. *)
let e9_zeta_vs_phi () =
  let t = T.create ~title:"E9  Sec. 4.2: metricity zeta vs variant phi (phi_log <= zeta everywhere)"
      [ "space"; "n"; "zeta"; "phi"; "lg phi"; "lg phi <= zeta" ]
  in
  let ok = ref true in
  let worst_gap = ref neg_infinity in
  let row name space =
    let z = Met.zeta space and p = Met.phi space in
    let holds = Num.log2 p <= z +. 1e-6 in
    worst_gap := Float.max !worst_gap (Num.log2 p -. z);
    if not holds then ok := false;
    T.add_row t
      [ T.S name; T.I (D.n space); T.F4 z; T.F4 p; T.F4 (Num.log2 p);
        T.S (string_of_bool holds) ]
  in
  row "euclid a=3 (n=20)"
    (D.of_points ~alpha:3. (Sp.random_points (Rng.create 11) ~n:20 ~side:10.));
  row "uniform (n=12)" (Sp.uniform 12);
  row "star k=10" (Sp.star ~k:10 ~r:2.);
  row "welzl n=8" (Sp.welzl ~n:8 ~eps:0.25);
  List.iter
    (fun q -> row (Printf.sprintf "three-point q=1e%d" (int_of_float (log10 q)))
        (Sp.three_point ~q))
    [ 1e2; 1e4; 1e6; 1e8 ];
  let g = Core.Graph.Graph.random (Rng.create 12) 8 0.5 in
  let mis_space, _ = Sp.mis_construction g in
  row "thm3 G(8,.5)" mis_space;
  let two_line, _ = Sp.two_line (Core.Graph.Graph.random (Rng.create 13) 6 0.5) ~alpha':2. () in
  row "thm6 n=6 a'=2" two_line;
  let env =
    Core.Radio.Environment.random_clutter (Rng.create 14) ~side:25. ~n_walls:20
      [ Core.Radio.Material.concrete ]
  in
  let nodes =
    Core.Radio.Node.of_points (Sp.random_points (Rng.create 15) ~n:14 ~side:24.)
  in
  row "indoor clutter (n=14)" (Core.Radio.Measure.decay_space ~seed:1 env nodes);
  (* Separation: zeta grows along the three-point family while phi < 2. *)
  let z_small = Met.zeta (Sp.three_point ~q:1e2) in
  let z_large = Met.zeta (Sp.three_point ~q:1e8) in
  if not (z_large > z_small +. 1. && Met.phi (Sp.three_point ~q:1e8) < 2.) then
    ok := false;
  T.print t;
  Outcome.make ~measured:!worst_gap ~bound:0.
    ~detail:"max (lg phi - zeta) over the zoo; three-point family separates"
    !ok

(* E10 — Welzl's construction: doubling dimension 1, independence n+1. *)
let e10_welzl () =
  let t = T.create ~title:"E10  Welzl construction: doubling dim 1, unbounded independence dim"
      [ "n"; "quasi-doubling A'"; "independence dim"; "expected"; "match" ]
  in
  let ok = ref true in
  let worst_a' = ref 0. in
  List.iter
    (fun n ->
      let space = Sp.welzl ~n ~eps:0.25 in
      let a' = Dim.quasi_doubling ~zeta:1. space in
      let indep = Dim.independence_dimension ~exact_limit:40 space in
      let good = indep = n + 1 && a' <= 1.01 in
      worst_a' := Float.max !worst_a' a';
      if not good then ok := false;
      T.add_row t
        [ T.I n; T.F4 a'; T.I indep; T.I (n + 1); T.S (string_of_bool good) ])
    [ 4; 8; 12; 16 ];
  T.print t;
  Outcome.make ~measured:!worst_a' ~bound:1.01
    ~detail:"max quasi-doubling A' while independence dim = n + 1 exactly"
    !ok

(* E11 — guards on the plane: greedy guard sets of size <= 6; the explicit
   six-sector construction verifies as a guard set. *)
let e11_guards () =
  let t = T.create ~title:"E11  Sec. 4.1 guards: planar guard sets (<= 6) and independence (<= 6)"
      [ "seed"; "n"; "max greedy guards"; "independence dim"; "sectors verify" ]
  in
  let ok = ref true in
  let worst_guards = ref 0 in
  List.iter
    (fun seed ->
      let pts = Sp.random_points (Rng.create seed) ~n:20 ~side:10. in
      let arr = Array.of_list pts in
      let space = D.of_points ~alpha:2. pts in
      let guards = Dim.max_guard_count space in
      let indep = Dim.independence_dimension ~exact_limit:30 space in
      (* The six-sector construction around node 0: nearest point in each
         60-degree sector. *)
      let x = 0 in
      let sector_guard s =
        let lo = float_of_int s *. Float.pi /. 3. -. Float.pi in
        let hi = lo +. (Float.pi /. 3.) in
        let best = ref None in
        Array.iteri
          (fun i p ->
            if i <> x then begin
              let d = Core.Geom.Point.sub p arr.(x) in
              let a = atan2 d.Core.Geom.Point.y d.Core.Geom.Point.x in
              if a >= lo && a < hi then
                match !best with
                | Some (_, bd) when bd <= Core.Geom.Point.dist arr.(x) p -> ()
                | _ -> best := Some (i, Core.Geom.Point.dist arr.(x) p)
            end)
          arr;
        Option.map fst !best
      in
      let sector_guards = List.filter_map sector_guard [ 0; 1; 2; 3; 4; 5 ] in
      let sectors_ok = Dim.is_guard_set space ~x sector_guards in
      let good = guards <= 6 && indep <= 6 && sectors_ok in
      worst_guards := max !worst_guards guards;
      if not good then ok := false;
      T.add_row t
        [ T.I seed; T.I 20; T.I guards; T.I indep; T.S (string_of_bool sectors_ok) ])
    [ 201; 202; 203; 204 ];
  T.print t;
  Outcome.make ~measured:(float_of_int !worst_guards) ~bound:6.
    ~detail:"max greedy guard-set size over seeds; six-sector sets verify"
    !ok
