module T = Core.Prelude.Table
module Rng = Core.Prelude.Rng
module Dim = Core.Decay.Dimension
module Sp = Core.Decay.Spaces

let e27_ambient_dimension () =
  let t = T.create ~title:"E27  Ambient dimension: independence vs kissing numbers, fading threshold"
      [ "space"; "alpha"; "independence"; "kissing bound"; "assouad A";
        "dim/alpha"; "fading (A<1)" ]
  in
  let ok = ref true in
  let worst_excess = ref min_int in
  let row name dim alpha space kissing =
    let indep = Dim.independence_dimension ~exact_limit:26 space in
    let a = Dim.assouad space in
    let fading = a < 1. in
    worst_excess := max !worst_excess (indep - kissing);
    if indep > kissing then ok := false;
    (* The fading verdict must match alpha > dim, with slack for the
       estimator on small point sets. *)
    if alpha >= float_of_int dim +. 1. && not fading then ok := false;
    T.add_row t
      [ T.S name; T.F alpha; T.I indep; T.I kissing; T.F4 a;
        T.F4 (float_of_int dim /. alpha); T.S (string_of_bool fading) ]
  in
  List.iter
    (fun alpha ->
      let pts2 = Sp.random_points (Rng.create 2201) ~n:22 ~side:10. in
      row "R^2 random" 2 alpha
        (Core.Decay.Decay_space.of_points ~alpha pts2)
        6)
    [ 2.; 4. ];
  List.iter
    (fun alpha ->
      let pts3 = Sp.random_points_3d (Rng.create 2202) ~n:22 ~side:10. in
      row "R^3 random" 3 alpha (Sp.of_points_3d ~alpha pts3) 12)
    [ 2.; 4.5 ];
  (* A 3-D lattice shell: the denser packing structure of R^3. *)
  let lattice =
    List.concat_map
      (fun x ->
        List.concat_map
          (fun y ->
            List.map
              (fun z ->
                Bg_geom.Point3.make (float_of_int x) (float_of_int y)
                  (float_of_int z))
              [ 0; 1; 2 ])
          [ 0; 1; 2 ])
      [ 0; 1; 2 ]
  in
  row "R^3 lattice 3x3x3" 3 4.5 (Sp.of_points_3d ~alpha:4.5 lattice) 12;
  T.print t;
  print_endline
    "E27 reading: independence never exceeds the ambient kissing number (6 in the\n\
     plane, 12 in space) and the fading boundary tracks alpha > dim, as Definition\n\
     3.3 and the Welzl bound predict in every ambient dimension.";
  print_newline ();
  Outcome.make ~measured:(float_of_int !worst_excess) ~bound:0.
    ~detail:"max (independence - kissing number); fading tracks alpha > dim"
    !ok
