module I = Core.Sinr.Instance
module T = Core.Prelude.Table
module Rng = Core.Prelude.Rng
module On = Core.Capacity.Online
module Cont = Core.Distrib.Contention

(* E21 — online capacity: naive vs separation-guarded admission under
   random and adversarial (weakest-first) arrival orders. *)
let e21_online_capacity () =
  let t = T.create ~title:"E21  Online capacity [15]: admission rules vs arrival order (OPT via B&B)"
      [ "order"; "alpha"; "OPT"; "naive accepted"; "naive ratio";
        "guarded accepted"; "guarded ratio" ]
  in
  let ok = ref true in
  let worst_guarded = ref 0. in
  List.iter
    (fun alpha ->
      List.iter
        (fun (order_name, order_fn) ->
          let inst =
            I.random_planar (Rng.create 1701) ~n_links:14 ~side:12. ~alpha
              ~lmin:1. ~lmax:3.
          in
          let arrival = order_fn inst in
          let naive = On.feasibility_only inst ~arrival in
          let guarded = On.guarded inst ~arrival in
          let opt = List.length (Core.Capacity.Exact.capacity inst) in
          let ratio s = float_of_int opt /. float_of_int (max 1 (List.length s)) in
          (* Both rules must stay within a moderate factor on these small
             instances; the guarded rule must never be catastrophically
             worse than naive. *)
          worst_guarded := Float.max !worst_guarded (ratio guarded);
          if ratio guarded > 8. then ok := false;
          T.add_row t
            [ T.S order_name; T.F alpha; T.I opt; T.I (List.length naive);
              T.F2 (ratio naive); T.I (List.length guarded);
              T.F2 (ratio guarded) ])
        [
          ( "random",
            fun (inst : I.t) ->
              let arr = Array.copy inst.I.links in
              Core.Prelude.Rng.shuffle (Rng.create 1702) arr;
              Array.to_list arr );
          ( "weakest-first",
            fun (inst : I.t) ->
              List.sort
                (fun a b -> Core.Sinr.Link.compare_by_decay inst.I.space b a)
                (Array.to_list inst.I.links) );
        ])
    [ 3.; 5. ];
  T.print t;
  Outcome.make ~measured:!worst_guarded ~bound:8.
    ~detail:"worst OPT / guarded-admission ratio over orders and alphas"
    !ok

(* E22 — contention resolution: drain time across density and spaces. *)
let e22_contention_resolution () =
  let t = T.create ~title:"E22  Contention resolution [45]: rounds to drain one packet per link"
      [ "instance"; "links"; "fixed p=0.25"; "backoff p0=0.8"; "all done" ]
  in
  let ok = ref true in
  let max_rounds_seen = ref 0 in
  let run name (inst : I.t) =
    let f = Cont.run ~max_rounds:20000 ~policy:(Cont.Fixed 0.25) (Rng.create 1801) inst in
    let b = Cont.run ~max_rounds:20000 ~policy:(Cont.Backoff 0.8) (Rng.create 1802) inst in
    let done_ = f.Cont.completed && b.Cont.completed in
    max_rounds_seen := max !max_rounds_seen (max f.Cont.rounds b.Cont.rounds);
    if not done_ then ok := false;
    T.add_row t
      [ T.S name; T.I (Array.length inst.I.links); T.I f.Cont.rounds;
        T.I b.Cont.rounds; T.S (string_of_bool done_) ]
  in
  run "planar sparse (side 60)"
    (I.random_planar (Rng.create 1803) ~n_links:12 ~side:60. ~alpha:3. ~lmin:1. ~lmax:2.);
  run "planar dense (side 8)"
    (I.random_planar (Rng.create 1804) ~n_links:12 ~side:8. ~alpha:3. ~lmin:1. ~lmax:2.);
  let g = Core.Graph.Graph.cycle 8 in
  let sp, pairs = Core.Decay.Spaces.mis_construction g in
  run "thm3 C8 (MIS space)" (I.equi_decay_of_space sp pairs);
  let env =
    Core.Radio.Environment.office ~rooms_x:3 ~rooms_y:3 ~room_size:6.
      Core.Radio.Material.drywall
  in
  let nodes =
    Core.Radio.Node.of_points
      (Core.Decay.Spaces.random_points (Rng.create 1805) ~n:24 ~side:17.)
  in
  let space = Core.Radio.Measure.decay_space ~seed:9 env nodes in
  run "indoor office"
    (I.random_links_in_space ~zeta:(Core.Decay.Metricity.zeta space)
       (Rng.create 1806) ~n_links:10
       ~max_decay:(Core.Decay.Decay_space.max_decay space) space);
  T.print t;
  Outcome.make ~measured:(float_of_int !max_rounds_seen) ~bound:20000.
    ~detail:"max drain rounds over instances and policies (cap 20000)"
    !ok
