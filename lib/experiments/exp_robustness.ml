module D = Core.Decay.Decay_space
module Ctx = Core.Decay.Ctx
module Met = Core.Decay.Metricity
module Sp = Core.Decay.Spaces
module V = Core.Decay.Validate
module C = Core.Decay.Corrupt
module T = Core.Prelude.Table
module Rng = Core.Prelude.Rng

(* E29 — robustness under injected measurement faults: every corruption
   mode x repair policy either repairs-and-reports (and the repaired
   space analyzes to finite, non-NaN parameters) or rejects with a
   cell-addressed diagnosis.  Never a crash, never a NaN.  This is the
   end-to-end claim behind the paper's premise that *measured* (hence
   dirty) decay data can drive the model. *)

let policies m =
  [ V.Reject; V.Clamp (V.suggested_clamp m); V.Symmetrize; V.Drop_nodes ]

let finite_positive v = Float.is_finite v && v >= 1.

let e29_fault_injection () =
  let t =
    T.create ~title:"E29  robustness: corrupted measurements through the repair pipeline"
      [ "space"; "fault"; "policy"; "outcome"; "zeta"; "phi"; "ok" ]
  in
  let spaces =
    [
      ( "plane n=20",
        D.of_points ~alpha:3.
          (Sp.random_points (Rng.create 2901) ~n:20 ~side:25.) );
      ( "asym n=16",
        D.of_fn ~name:"asym" 16 (fun i j ->
            let g = Rng.create ((2902 * 16 * 16) + (i * 16) + j) in
            0.5 +. Rng.float g 49.5) );
    ]
  in
  let total = ref 0 and ok = ref 0 and nan_seen = ref false in
  List.iter
    (fun (sname, space) ->
      List.iteri
        (fun k mode ->
          let raw = C.apply ~seed:(2910 + k) mode space in
          List.iter
            (fun policy ->
              incr total;
              let row outcome zeta phi good =
                T.add_row t
                  [ T.S sname; T.S (C.label mode);
                    T.S (V.policy_to_string policy); T.S outcome;
                    T.S zeta; T.S phi; T.S (string_of_bool good) ];
                if good then incr ok
              in
              match D.of_matrix_repaired ~name:"corrupted" ~policy raw with
              | Ok (repaired, report) ->
                  let zeta = Met.zeta ~ctx:Ctx.uncached repaired in
                  let phi = Met.phi ~ctx:Ctx.uncached repaired in
                  if Float.is_nan zeta || Float.is_nan phi then
                    nan_seen := true;
                  let good = finite_positive zeta && finite_positive phi in
                  row
                    (Printf.sprintf "repaired (%s)"
                       (V.repair_to_string report))
                    (Printf.sprintf "%.3f" zeta)
                    (Printf.sprintf "%.3f" phi)
                    good
              | Error diag ->
                  (* A rejection must come with an actionable diagnosis:
                     at least one cell-addressed issue. *)
                  let good = diag.V.issues <> [] in
                  row ("rejected: " ^ V.describe diag) "-" "-" good
              | exception e ->
                  nan_seen := true;
                  row ("CRASH: " ^ Printexc.to_string e) "-" "-" false)
            (policies raw))
        C.default_suite)
    spaces;
  T.print t;
  Outcome.make
    ~measured:(float_of_int !ok)
    ~bound:(float_of_int !total)
    ~detail:
      (Printf.sprintf
         "%d/%d (space,fault,policy) scenarios repaired-or-rejected cleanly; \
          NaN outputs: %b"
         !ok !total !nan_seen)
    (!ok = !total && not !nan_seen)
