(** Experiments E1-E3 and E9-E11: the model-side claims of the paper
    (theory transfer, the fading bound, the parameter relationships and the
    dimension constructions).  Each function prints one or more tables to
    stdout and returns a structured {!Outcome.t} (pass flag plus the headline measured-vs-bound comparison).
    See DESIGN.md section 5 for the experiment index and EXPERIMENTS.md for
    recorded results. *)

val e1_theory_transfer : unit -> Outcome.t
(** Proposition 1: GEO-SINR embeds with [zeta = alpha]; running Algorithm 1
    through the induced quasi-metric reproduces the direct run. *)

val e2_fading_bound : unit -> Outcome.t
(** Theorem 2: measured [gamma(r)] on doubling decay spaces vs the
    closed-form bound [C 2^(A+1) (zetahat(2-A) - 1)]. *)

val e3_star_example : unit -> Outcome.t
(** Section 3.4: the star space has unbounded doubling dimension yet
    vanishing far-leaf interference. *)

val e9_zeta_vs_phi : unit -> Outcome.t
(** Section 4.2: [phi_log <= zeta] on every space; the three-point family
    separates the parameters ([zeta] unbounded, [phi < 2]). *)

val e10_welzl : unit -> Outcome.t
(** Welzl's construction: doubling dimension 1, independence dimension
    [n + 1]. *)

val e11_guards : unit -> Outcome.t
(** Six 60-degree sectors guard any planar point; independence dimension of
    planar spaces is at most the kissing number 6. *)
