(** Experiments E25-E26: flow-based throughput ([8], [62]) and the negative
    control the paper's §2.3 calls out — SINR diagrams [4] rely on
    Euclidean topology and do *not* transfer to realistic decay spaces. *)

val e25_flow_throughput : unit -> Outcome.t
(** Multi-hop sessions over decay spaces: routing, hop scheduling and
    end-to-end throughput as the environment hardens. *)

val e26_sinr_diagram_negative : unit -> Outcome.t
(** Reception-zone convexity holds in free space (Avin et al.) and breaks
    behind walls — evidence that the geometric result is genuinely tied to
    geometry, exactly as the paper claims. *)
