module T = Core.Prelude.Table
module Rng = Core.Prelude.Rng
module Met = Core.Decay.Metricity
module Est = Core.Decay.Estimators

let time_it f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, (Unix.gettimeofday () -. t0) *. 1e3)

(* E24, two halves.

   Cross-validation: on indoor radio spaces small enough for the exact
   kernel, both estimators must (a) stay at or below the exact zeta —
   they are certified lower bounds — (b) bracket it, [exact <= hi], at
   their stated confidence, and (c) recover a substantial share of it.

   Scale: the same estimator then runs on an n = 50,000 geometric oracle
   where the exact kernel is out of reach (the induced matrix alone is
   20 GB; the oracle pays 2 floats per node plus one sub-space at a
   time). *)
let e24_metricity_scaling () =
  let t =
    T.create
      ~title:
        "E24  Metricity at scale: exact kernel vs stratified estimators \
         with confidence bounds"
      [ "n"; "exact zeta"; "ms"; "sub-space est"; "hi"; "ms";
        "triple est"; "hi"; "ms"; "exact in CI" ]
  in
  let ok = ref true in
  let min_recovery = ref infinity in
  List.iter
    (fun n ->
      let env =
        Core.Radio.Environment.random_clutter (Rng.create 2001) ~side:40.
          ~n_walls:30
          [ Core.Radio.Material.concrete; Core.Radio.Material.drywall ]
      in
      let nodes =
        Core.Radio.Node.of_points
          (Core.Decay.Spaces.random_points (Rng.create (2002 + n)) ~n ~side:38.)
      in
      let space = Core.Radio.Measure.decay_space ~seed:2 env nodes in
      let oracle = Est.of_space space in
      let exact, t_exact = time_it (fun () -> Met.zeta space) in
      let sub, t_sub =
        time_it (fun () ->
            Est.zeta ~confidence:0.9 ~nodes:(min 24 n) (Rng.create 4) oracle)
      in
      let tri, t_tri =
        time_it (fun () ->
            Est.zeta_triples ~confidence:0.9 ~samples:20_000 (Rng.create 3)
              oracle)
      in
      let lower =
        sub.Est.point <= exact +. 1e-9 && tri.Est.point <= exact +. 1e-9
      in
      let contained = exact <= sub.Est.hi && exact <= tri.Est.hi in
      min_recovery :=
        Float.min !min_recovery
          (Float.max sub.Est.point tri.Est.point /. exact);
      if not (lower && contained) then ok := false;
      (* The estimators should recover a substantial share of the truth. *)
      if sub.Est.point < 0.5 *. exact && tri.Est.point < 0.5 *. exact then
        ok := false;
      T.add_row t
        [ T.I n; T.F2 exact; T.F2 t_exact; T.F2 sub.Est.point;
          T.F2 sub.Est.hi; T.F2 t_sub; T.F2 tri.Est.point; T.F2 tri.Est.hi;
          T.F2 t_tri; T.S (string_of_bool contained) ])
    [ 30; 60; 100 ];
  T.print t;
  (* Out-of-reach scale: 50k nodes via a pay-per-probe geometric oracle.
     Memory stays bounded by one [nodes]^2 sub-space per replicate. *)
  let big_n = 50_000 in
  let big =
    Est.of_points ~name:"plane-50k" ~alpha:3.
      (Core.Decay.Spaces.random_points (Rng.create 2024) ~n:big_n ~side:1000.)
  in
  let est, t_est =
    time_it (fun () ->
        Est.zeta ~confidence:0.9 ~replicates:6 ~nodes:64 (Rng.create 5) big)
  in
  Printf.printf
    "  n=%d estimated zeta >= %.4f, 90%% CI [%.4f, %.4f]  (%.0f ms, \
     bounded memory)\n%!"
    big_n est.Est.point est.Est.lo est.Est.hi t_est;
  if not (est.Est.point >= 1. && est.Est.hi >= est.Est.point) then ok := false;
  Outcome.make ~measured:!min_recovery ~bound:0.5
    ~detail:
      "min share of exact zeta recovered; CIs contained the exact value"
    !ok
