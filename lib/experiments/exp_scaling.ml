module T = Core.Prelude.Table
module Rng = Core.Prelude.Rng
module Met = Core.Decay.Metricity

let time_it f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, (Unix.gettimeofday () -. t0) *. 1e3)

let e24_metricity_scaling () =
  let t = T.create ~title:"E24  Metricity at scale: exact vs sampled estimators on indoor spaces"
      [ "n"; "exact zeta"; "ms"; "triple-sampled (20k)"; "ms";
        "node-subsampled (8x24)"; "ms"; "both lower bounds" ]
  in
  let ok = ref true in
  let min_recovery = ref infinity in
  List.iter
    (fun n ->
      let env =
        Core.Radio.Environment.random_clutter (Rng.create 2001) ~side:40.
          ~n_walls:30
          [ Core.Radio.Material.concrete; Core.Radio.Material.drywall ]
      in
      let nodes =
        Core.Radio.Node.of_points
          (Core.Decay.Spaces.random_points (Rng.create (2002 + n)) ~n ~side:38.)
      in
      let space = Core.Radio.Measure.decay_space ~seed:2 env nodes in
      let exact, t_exact = time_it (fun () -> Met.zeta space) in
      let sampled, t_sampled =
        time_it (fun () -> Met.zeta_sampled ~samples:20_000 (Rng.create 3) space)
      in
      let sub, t_sub =
        time_it (fun () ->
            Met.zeta_subsampled ~rounds:8 ~nodes:(min 24 n) (Rng.create 4) space)
      in
      let lower = sampled <= exact +. 1e-9 && sub <= exact +. 1e-9 in
      min_recovery := Float.min !min_recovery (Float.max sampled sub /. exact);
      if not lower then ok := false;
      (* The estimators should recover a substantial share of the truth. *)
      if sampled < 0.5 *. exact && sub < 0.5 *. exact then ok := false;
      T.add_row t
        [ T.I n; T.F2 exact; T.F2 t_exact; T.F2 sampled; T.F2 t_sampled;
          T.F2 sub; T.F2 t_sub; T.S (string_of_bool lower) ])
    [ 30; 60; 100 ];
  T.print t;
  Outcome.make ~measured:!min_recovery ~bound:0.5
    ~detail:"min share of exact zeta recovered by the better estimator"
    !ok
