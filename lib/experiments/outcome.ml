type t = {
  pass : bool;
  measured : float option;
  bound : float option;
  detail : string;
}

let make ?measured ?bound ~detail pass = { pass; measured; bound; detail }

let of_bool ?measured ?bound ~detail pass = make ?measured ?bound ~detail pass

let leq ?(detail = "") ~measured ~bound () =
  { pass = measured <= bound; measured = Some measured; bound = Some bound; detail }

let geq ?(detail = "") ~measured ~bound () =
  { pass = measured >= bound; measured = Some measured; bound = Some bound; detail }

let float_cell = function
  | None -> "-"
  | Some v ->
      if Float.is_integer v && Float.abs v < 1e9 then
        Printf.sprintf "%.0f" v
      else Printf.sprintf "%.4g" v
