module D = Core.Decay.Decay_space
module Ctx = Core.Decay.Ctx
module Met = Core.Decay.Metricity
module Fad = Core.Decay.Fading
module Sp = Core.Decay.Spaces
module I = Core.Sinr.Instance
module T = Core.Prelude.Table
module Rng = Core.Prelude.Rng
module Prop = Core.Radio.Propagation
module Env = Core.Radio.Environment
module Meas = Core.Radio.Measure
module Node = Core.Radio.Node
module LB = Core.Distrib.Local_broadcast

(* E12 — distributed algorithms across spaces of growing fading value:
   local-broadcast round counts track gamma(r); the no-regret game and
   aggregation run unchanged on every space (Prop. 1 for the distributed
   families of section 3.3). *)
let e12_distributed () =
  let t = T.create ~title:"E12  Sec. 3: distributed algorithms vs the fading parameter gamma(r)"
      [ "space"; "n"; "gamma(r)"; "LB rounds"; "LB done"; "regret thpt";
        "agg slots" ]
  in
  let rows = ref [] in
  let run name space ~radius =
    let n = D.n space in
    let gamma = Fad.gamma ~ctx:(Ctx.make ~exact_limit:16 ()) space ~r:radius in
    let lb = LB.run ~max_rounds:4000 (Rng.create 801) space ~radius in
    let zeta = Met.zeta space in
    let inst =
      I.random_links_in_space ~zeta (Rng.create 802) ~n_links:(min 6 (n / 3))
        ~max_decay:(D.max_decay space) space
    in
    let game = Core.Distrib.Regret.run ~rounds:500 (Rng.create 803) inst in
    let agg = Core.Distrib.Aggregation.run ~power:(2. *. D.max_decay space)
        ~beta:1.5 ~noise:1. space ~sink:0 in
    rows := (gamma, lb.LB.rounds) :: !rows;
    T.add_row t
      [ T.S name; T.I n; T.F4 gamma; T.I lb.LB.rounds;
        T.S (string_of_bool lb.LB.completed);
        T.F2 game.Core.Distrib.Regret.avg_successes; T.I agg.Core.Distrib.Aggregation.slots ];
    lb.LB.completed
  in
  let grid4 = D.of_points ~alpha:4. (Sp.grid_points ~rows:5 ~cols:5 ~spacing:1.) in
  let grid25 = D.of_points ~alpha:2.5 (Sp.grid_points ~rows:5 ~cols:5 ~spacing:1.) in
  let star = Sp.star ~k:16 ~r:4. in
  let env = Env.random_clutter (Rng.create 804) ~side:25. ~n_walls:20
      [ Core.Radio.Material.concrete; Core.Radio.Material.drywall ] in
  let indoor =
    Meas.decay_space ~seed:5 env
      (Node.of_points (Sp.random_points (Rng.create 805) ~n:18 ~side:24.))
  in
  let uniform = Sp.uniform 18 in
  let ok = ref true in
  if not (run "grid alpha=4 (fading)" grid4 ~radius:2.) then ok := false;
  if not (run "grid alpha=2.5" grid25 ~radius:2.) then ok := false;
  if not (run "star k=16" star ~radius:4.) then ok := false;
  if not (run "uniform n=18" uniform ~radius:1.) then ok := false;
  (* Indoor decays are astronomically scaled; pick the neighbourhood radius
     at the 30th percentile of decays. *)
  let all_decays =
    let n = D.n indoor in
    let acc = ref [] in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then acc := D.decay indoor i j :: !acc
      done
    done;
    Array.of_list !acc
  in
  let radius = Core.Prelude.Stats.percentile all_decays 30. in
  if not (run "indoor clutter" indoor ~radius) then ok := false;
  T.print t;
  let max_gamma = List.fold_left (fun a (g, _) -> Float.max a g) 0. !rows in
  Outcome.make ~measured:max_gamma
    ~detail:"max gamma(r) across spaces; local broadcast completed on all"
    !ok

(* E13 — thresholding: PRR vs mean SINR under different small-scale fading
   regimes.  Without fading the curve is the exact indicator step; with
   fading it is the steep S-curve reported by the experimental studies the
   paper cites in defence of keeping the capture assumption. *)
let e13_thresholding () =
  let beta = 2. in
  let t = T.create ~title:"E13  Sec. 2.1: packet reception rate vs mean SINR (beta = 2, i.e. 3 dB)"
      [ "SINR (dB)"; "no fading"; "rayleigh"; "rician K=10" ] in
  let g = Rng.create 901 in
  let curve fading sinr_db =
    Meas.prr ~samples:4000 g ~beta ~mean_sinr:(10. ** (sinr_db /. 10.)) ~fading
  in
  let sweep = [ -6.; -3.; 0.; 3.; 6.; 9.; 12.; 15. ] in
  List.iter
    (fun s ->
      T.add_row t
        [ T.F s; T.F2 (curve Prop.No_fading s); T.F2 (curve Prop.Rayleigh s);
          T.F2 (curve (Prop.Rician 10.) s) ])
    sweep;
  T.print t;
  (* Claim checks: exact step without fading; Rician steeper than Rayleigh
     around the threshold; all curves monotone. *)
  let step_low = curve Prop.No_fading 2.9 and step_high = curve Prop.No_fading 3.1 in
  let ric_span = curve (Prop.Rician 10.) 9. -. curve (Prop.Rician 10.) (-3.) in
  let ray_span = curve Prop.Rayleigh 9. -. curve Prop.Rayleigh (-3.) in
  let ok = step_low = 0. && step_high = 1. && ric_span > ray_span in
  Printf.printf
    "E13 summary: hard threshold at 3 dB without fading; transition width shrinks with K (Rician span %.2f > Rayleigh span %.2f over [-3,9] dB)\n\n"
    ric_span ray_span;
  Outcome.make ~measured:ric_span ~bound:ray_span
    ~detail:"Rician span must exceed Rayleigh span; no-fading step is exact"
    ok

(* E14 — measurability: distance stops predicting decay as environments
   get harsher, while zeta stays moderate and the RSSI pipeline preserves
   it.  This is the paper's core empirical motivation, reproduced in
   simulation. *)
let e14_measurability () =
  let t = T.create ~title:"E14  Sec. 1/2.2: link quality vs distance across environments"
      [ "environment"; "spearman(dist, decay)"; "zeta (truth)"; "zeta (RSSI)";
        "zeta upper bound" ]
  in
  let pts = Sp.random_points (Rng.create 1001) ~n:16 ~side:23. in
  let nodes = Node.of_points pts in
  let results = ref [] in
  let row name env config =
    let space = Meas.decay_space ~seed:9 ~config env nodes in
    let corr = Meas.distance_decay_correlation env nodes space in
    let zeta = Met.zeta space in
    let measured =
      Meas.measured_decay_space ~tx_power_dbm:20. space
    in
    let zeta_m = Met.zeta measured in
    results := (name, corr, zeta, zeta_m) :: !results;
    T.add_row t
      [ T.S name; T.F4 corr; T.F2 zeta; T.F2 zeta_m;
        T.F2 (Met.zeta_upper_bound space) ]
  in
  let free = Env.empty ~side:25. in
  row "free space" free Prop.free_space_config;
  row "open + shadowing 6dB" free
    { Prop.default with Prop.walls = false };
  row "office drywall" (Env.office ~rooms_x:4 ~rooms_y:4 ~room_size:6.
                          Core.Radio.Material.drywall)
    { Prop.default with Prop.shadowing_sigma_db = 4. };
  row "dense metal clutter"
    (Env.random_clutter (Rng.create 1002) ~side:25. ~n_walls:60
       [ Core.Radio.Material.metal; Core.Radio.Material.concrete ])
    { Prop.default with Prop.shadowing_sigma_db = 8. };
  T.print t;
  (* Claims: perfect correlation in free space; correlation strictly drops
     to the harshest environment; RSSI-measured zeta tracks the truth. *)
  match List.rev !results with
  | (_, c_free, z_free, _) :: rest ->
      let _, c_worst, _, _ = List.nth rest (List.length rest - 1) in
      (* Quantization can only nudge zeta up slightly; noise-floor
         censoring truncates the extreme decays and hence can pull the
         measured metricity well below the truth.  The faithful check is
         one-sided: measurement never inflates zeta by more than the
         quantization wiggle. *)
      let zeta_tracks =
        List.for_all (fun (_, _, z, zm) -> zm <= z +. 1.5) (List.rev !results)
      in
      let ok =
        c_free > 0.999 && c_worst < 0.8 && Float.abs (z_free -. 2.) < 0.01
        && zeta_tracks
      in
      Printf.printf
        "E14 summary: correlation %.3f (free space) -> %.3f (metal clutter); RSSI measurement never inflates zeta (censoring can deflate it)\n\n"
        c_free c_worst;
      Outcome.make ~measured:c_worst ~bound:0.8
        ~detail:"distance-decay correlation in the harshest environment"
        ok
  | [] -> Outcome.make ~detail:"no environments measured" false
