module I = Core.Sinr.Instance
module T = Core.Prelude.Table
module Rng = Core.Prelude.Rng
module R = Core.Sched.Rates
module Cog = Core.Capacity.Cognitive

let e23_rates_and_cognitive () =
  let ok = ref true in
  (* Part A: flexible data rates. *)
  let t = T.create ~title:"E23a  Flexible data rates [43]: slots to serve demands (greedy rate scheduler)"
      [ "side"; "demand/link"; "slots"; "completed"; "verified" ]
  in
  List.iter
    (fun (side, demand) ->
      let inst =
        I.random_planar (Rng.create 1901) ~n_links:10 ~side ~alpha:3. ~lmin:1.
          ~lmax:2.
      in
      let demands = Array.make 10 demand in
      let r = R.schedule ~demands inst in
      let v = R.verify inst ~demands r in
      if not (r.R.completed && v) then ok := false;
      T.add_row t
        [ T.F side; T.F demand; T.I r.R.slots; T.S (string_of_bool r.R.completed);
          T.S (string_of_bool v) ])
    [ (30., 4.); (30., 16.); (8., 4.); (8., 16.) ];
  T.print t;
  (* Part B: cognitive radio. *)
  let t2 = T.create ~title:"E23b  Cognitive radio [33]: secondary admission under primary protection"
      [ "seed"; "primaries"; "secondaries"; "greedy admit"; "exact admit";
        "primaries safe" ]
  in
  List.iter
    (fun seed ->
      let inst =
        I.random_planar (Rng.create seed) ~n_links:14 ~side:16. ~alpha:3.
          ~lmin:1. ~lmax:2.
      in
      let all = Array.to_list inst.I.links in
      let rec take k = function
        | l :: rest when k > 0 ->
            let a, b = take (k - 1) rest in
            (l :: a, b)
        | rest -> ([], rest)
      in
      let prim_cand, secondaries = take 4 all in
      let primaries =
        Core.Capacity.Greedy.strongest_first
          (I.with_links inst (Array.of_list prim_cand))
      in
      let g = Cog.greedy inst ~primaries ~secondaries in
      let e = Cog.exact inst ~primaries ~secondaries in
      let safe =
        Cog.admission_is_safe inst ~primaries ~admitted:e
        && Cog.admission_is_safe inst ~primaries ~admitted:g
      in
      if not (safe && List.length e >= List.length g) then ok := false;
      T.add_row t2
        [ T.I seed; T.I (List.length primaries); T.I (List.length secondaries);
          T.I (List.length g); T.I (List.length e); T.S (string_of_bool safe) ])
    [ 1902; 1903; 1904 ];
  T.print t2;
  Outcome.make
    ~detail:"rate schedules complete and verify; cognitive admission safe"
    !ok
