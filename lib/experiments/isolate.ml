(* Run experiments inside an isolation wrapper so one crashing or hanging
   claim can never take down a whole [bg experiment] run: every entry
   produces a structured status, the runner always reaches the end of its
   list, and the aggregate exit code stays faithful. *)

module Par = Core.Prelude.Parallel
module Obs = Core.Prelude.Obs

let m_retries = Obs.counter "isolate.retries"
let m_timeouts = Obs.counter "isolate.timeouts"
let m_crashes = Obs.counter "isolate.crashes"

type exn_info = { exn : string; backtrace : string }

type status =
  | Finished of Outcome.t
  | Crashed of exn_info
  | Timed_out of float

type result = {
  id : string;
  claim : string;
  status : status;
  attempts : int;
}

let status_verdict = function
  | Finished o -> if o.Outcome.pass then "PASS" else "FAIL"
  | Crashed _ -> "CRASH"
  | Timed_out _ -> "TIMEOUT"

let status_passed = function Finished o -> o.Outcome.pass | _ -> false

let run_entry ?timeout_s ?(retries = 0) ?(backoff_s = 0.05)
    (e : Registry.entry) =
  (* One span per experiment, carrying the verdict: this is the unit the
     golden-trace test counts, so every exit path below must still close
     through [with_span]. *)
  Obs.with_span ~attrs:[ ("id", Obs.S e.Registry.id) ] "experiment"
  @@ fun () ->
  let attempt () =
    (* The deadline is cooperative: the O(n^3) sweeps poll it at chunk
       boundaries (see Parallel.with_deadline), so a hung sweep surfaces
       as Timed_out instead of wedging the runner. *)
    match timeout_s with
    | None -> Finished (e.Registry.run ())
    | Some s -> (
        try Par.with_deadline ~seconds:s (fun () -> Finished (e.Registry.run ()))
        with Par.Timeout ->
          Obs.incr m_timeouts;
          Timed_out s)
  in
  let rec go k =
    match attempt () with
    | status -> { id = e.Registry.id; claim = e.Registry.claim; status; attempts = k }
    | exception Par.Timeout ->
        (* A Timeout escaping [attempt] means an enclosing (ambient)
           deadline fired, not ours: let the owner see it. *)
        raise Par.Timeout
    | exception ex ->
        let info =
          {
            exn = Printexc.to_string ex;
            backtrace = Printexc.get_backtrace ();
          }
        in
        if k <= retries then begin
          Obs.incr m_retries;
          (* Exponential backoff between retries: transient resource
             failures (fd exhaustion, a busy pool) get room to clear. *)
          Unix.sleepf (backoff_s *. float_of_int (1 lsl (k - 1)));
          go (k + 1)
        end
        else begin
          Obs.incr m_crashes;
          {
            id = e.Registry.id;
            claim = e.Registry.claim;
            status = Crashed info;
            attempts = k;
          }
        end
  in
  let r = go 1 in
  Obs.add_span_attr "verdict" (Obs.S (status_verdict r.status));
  Obs.add_span_attr "pass" (Obs.B (status_passed r.status));
  Obs.add_span_attr "attempts" (Obs.I r.attempts);
  r

let run_entries ?timeout_s ?retries ?backoff_s entries =
  List.map
    (fun (e : Registry.entry) ->
      Printf.printf "--- %s: %s ---\n%!" e.Registry.id e.Registry.claim;
      let r = run_entry ?timeout_s ?retries ?backoff_s e in
      (match r.status with
      | Finished _ -> ()
      | Crashed info ->
          Printf.printf "*** %s crashed (%d attempt%s): %s\n%!" r.id
            r.attempts
            (if r.attempts = 1 then "" else "s")
            info.exn
      | Timed_out s ->
          Printf.printf "*** %s timed out after %gs\n%!" r.id s);
      r)
    entries

let passed r = status_passed r.status
let all_ok results = List.for_all passed results
let exit_code results = if all_ok results then 0 else 1
let verdict r = status_verdict r.status

let print_results results =
  let t =
    Bg_prelude.Table.create ~title:"experiment outcomes"
      [ "id"; "verdict"; "measured"; "bound"; "detail" ]
  in
  List.iter
    (fun r ->
      let measured, bound, detail =
        match r.status with
        | Finished o ->
            ( Outcome.float_cell o.Outcome.measured,
              Outcome.float_cell o.Outcome.bound,
              o.Outcome.detail )
        | Crashed info ->
            ( "-", "-",
              Printf.sprintf "%s (after %d attempt%s)" info.exn r.attempts
                (if r.attempts = 1 then "" else "s") )
        | Timed_out s -> ("-", "-", Printf.sprintf "exceeded %gs budget" s)
      in
      Bg_prelude.Table.add_row t
        [
          Bg_prelude.Table.S r.id;
          Bg_prelude.Table.S (verdict r);
          Bg_prelude.Table.S measured;
          Bg_prelude.Table.S bound;
          Bg_prelude.Table.S detail;
        ])
    results;
  Bg_prelude.Table.print t
