module T = Core.Prelude.Table
module Rng = Core.Prelude.Rng
module D = Core.Decay.Decay_space
module Flow = Core.Sched.Flow

(* E25 — flow throughput: the same sessions across environments. *)
let e25_flow_throughput () =
  let t = T.create ~title:"E25  Flow throughput [8,62]: multi-hop sessions as the environment hardens"
      [ "environment"; "routed"; "hops"; "slots"; "throughput"; "verified" ]
  in
  let ok = ref true in
  let min_routed = ref max_int in
  let pts = Core.Decay.Spaces.random_points (Rng.create 2101) ~n:24 ~side:30. in
  let nodes = Core.Radio.Node.of_points pts in
  let sessions =
    [ { Flow.src = 0; dst = 23 }; { Flow.src = 3; dst = 20 };
      { Flow.src = 7; dst = 16 }; { Flow.src = 11; dst = 2 } ]
  in
  let beta = 1.5 and noise = 1. in
  List.iter
    (fun (name, env, config) ->
      let space = Core.Radio.Measure.decay_space ~seed:3 ~config env nodes in
      (* Power: enough to reach the 25th percentile decay in one hop. *)
      let all =
        Core.Decay.Statistics.decays_db space
        |> Array.map (fun db -> 10. ** (db /. 10.))
      in
      let power =
        beta *. noise *. Core.Prelude.Stats.percentile all 25.
      in
      let r = Flow.run ~beta ~noise ~power space ~sessions in
      let verified =
        List.for_all
          (fun slot ->
            let pairs =
              List.map
                (fun l -> (l.Core.Sinr.Link.sender, l.Core.Sinr.Link.receiver))
                slot
            in
            let sub = Core.Sinr.Instance.make ~noise ~beta ~zeta:1. space pairs in
            Core.Sinr.Feasibility.is_feasible sub
              (Core.Sinr.Power.uniform power)
              (Array.to_list sub.Core.Sinr.Instance.links))
          r.Flow.schedule
      in
      min_routed := min !min_routed r.Flow.routed;
      if r.Flow.routed = 0 then ok := false;
      T.add_row t
        [ T.S name; T.S (Printf.sprintf "%d/4" r.Flow.routed);
          T.I (List.length r.Flow.hop_links); T.I r.Flow.slots;
          T.F4 r.Flow.throughput; T.S (string_of_bool verified) ])
    [
      ("open field", Core.Radio.Environment.empty ~side:30.,
       { Core.Radio.Propagation.default with Core.Radio.Propagation.walls = false;
         shadowing_sigma_db = 0. });
      ("office drywall",
       Core.Radio.Environment.office ~rooms_x:3 ~rooms_y:3 ~room_size:10.
         Core.Radio.Material.drywall,
       { Core.Radio.Propagation.default with
         Core.Radio.Propagation.shadowing_sigma_db = 2. });
      ("concrete maze",
       Core.Radio.Environment.random_clutter (Rng.create 2102) ~side:30.
         ~n_walls:25 [ Core.Radio.Material.concrete ],
       { Core.Radio.Propagation.default with
         Core.Radio.Propagation.shadowing_sigma_db = 4. });
    ];
  T.print t;
  Outcome.make ~measured:(float_of_int !min_routed) ~bound:1.
    ~detail:"min sessions routed across environments (of 4); slots verify"
    !ok

(* E26 — the negative control: reception-zone convexity. *)
let e26_sinr_diagram_negative () =
  let t = T.create ~title:"E26  SINR diagrams [4] do NOT transfer: reception-zone convexity defect"
      [ "environment"; "cells"; "max convexity defect"; "zones convex" ]
  in
  let pts =
    [| Core.Geom.Point.make 7. 18.; Core.Geom.Point.make 23. 12.;
       Core.Geom.Point.make 14. 26. |]
  in
  let run name env config =
    let cells = Core.Radio.Diagram.reception_cells env config pts in
    let defect =
      Core.Radio.Diagram.convexity_of_cells env config pts cells
    in
    T.add_row t
      [ T.S name; T.I (List.length cells); T.F4 defect;
        T.S (string_of_bool (defect < 0.02)) ];
    defect
  in
  let free =
    run "free space"
      (Core.Radio.Environment.empty ~side:32.)
      Core.Radio.Propagation.free_space_config
  in
  let walls =
    run "metal partitions"
      (Core.Radio.Environment.random_clutter (Rng.create 2103) ~side:32.
         ~n_walls:14
         [ Core.Radio.Material.metal ])
      { Core.Radio.Propagation.free_space_config with
        Core.Radio.Propagation.walls = true }
  in
  T.print t;
  print_endline
    "E26 reading: in free space the zones are (near-)convex, as Avin et al. prove;\n\
     walls shatter them.  Convexity is a property of the geometry, not of the SINR\n\
     machinery — which is why the paper excludes SINR diagrams from the transfer.";
  print_newline ();
  Outcome.make ~measured:walls ~bound:(2. *. Float.max 0.005 free)
    ~detail:"wall-environment convexity defect must exceed the bound; free \
             space stays below 0.02"
    (free < 0.02 && walls > 2. *. Float.max 0.005 free)
