module I = Core.Sinr.Instance
module Pw = Core.Sinr.Power
module T = Core.Prelude.Table
module Rng = Core.Prelude.Rng
module D = Core.Decay.Decay_space

(* E18 — spectrum auctions: allocation quality and incentive checks. *)
let e18_spectrum_auction () =
  let t = T.create ~title:"E18  Spectrum auction [38]: greedy truthful mechanism vs exact welfare optimum"
      [ "alpha"; "welfare greedy"; "welfare OPT"; "ratio"; "payments <= bids";
        "monotone" ]
  in
  let ok = ref true in
  let worst_ratio = ref 0. in
  List.iter
    (fun alpha ->
      let inst =
        I.random_planar (Rng.create 1401) ~n_links:12 ~side:18. ~alpha ~lmin:1.
          ~lmax:2.
      in
      let g = Rng.create 1402 in
      let bids =
        Array.init (Array.length inst.I.links) (fun _ ->
            1. +. Rng.float g 9.)
      in
      let o = Core.Capacity.Auction.run inst ~bids in
      let opt_set = Core.Capacity.Weighted.exact inst bids in
      let opt = Core.Capacity.Weighted.total bids opt_set in
      let ratio = opt /. Float.max 1e-9 o.Core.Capacity.Auction.welfare in
      let payments_ok =
        List.for_all
          (fun (id, pay) -> pay <= bids.(id) +. 1e-6 && pay >= 0.)
          o.Core.Capacity.Auction.payments
      in
      let monotone =
        List.for_all
          (fun l -> Core.Capacity.Auction.is_winner_monotone inst ~bids l)
          o.Core.Capacity.Auction.winners
      in
      worst_ratio := Float.max !worst_ratio ratio;
      if not (payments_ok && monotone && ratio < 3.) then ok := false;
      T.add_row t
        [ T.F alpha; T.F2 o.Core.Capacity.Auction.welfare; T.F2 opt; T.F2 ratio;
          T.S (string_of_bool payments_ok); T.S (string_of_bool monotone) ])
    [ 2.; 3.; 4.; 6. ];
  T.print t;
  Outcome.make ~measured:!worst_ratio ~bound:3.
    ~detail:"worst OPT / greedy welfare ratio; payments and monotonicity hold"
    !ok

(* E19 — conflict graphs: how much does the pairwise abstraction lose? *)
let e19_conflict_graphs () =
  let t = T.create ~title:"E19  Conflict graphs [61,60]: pairwise abstraction vs additive SINR"
      [ "side"; "alpha"; "true capacity"; "graph capacity"; "overestimate";
        "CG slots"; "SINR slots"; "slot fidelity" ]
  in
  let ok = ref true in
  let min_over = ref infinity in
  List.iter
    (fun (side, alpha) ->
      let inst =
        I.random_planar (Rng.create 1501) ~n_links:14 ~side ~alpha ~lmin:1.
          ~lmax:2.
      in
      let true_cap = List.length (Core.Capacity.Exact.capacity inst) in
      let graph_cap = Core.Sched.Conflict_graph.graph_capacity inst in
      let cg_slots = List.length (Core.Sched.Conflict_graph.schedule inst) in
      let sinr_slots =
        List.length (Core.Sched.Scheduler.first_fit inst)
      in
      let fid = Core.Sched.Conflict_graph.fidelity inst in
      min_over :=
        Float.min !min_over
          (float_of_int graph_cap /. float_of_int (max 1 true_cap));
      if graph_cap < true_cap then ok := false;
      T.add_row t
        [ T.F side; T.F alpha; T.I true_cap; T.I graph_cap;
          T.F2 (float_of_int graph_cap /. float_of_int (max 1 true_cap));
          T.I cg_slots; T.I sinr_slots; T.F2 fid ])
    [ (40., 3.); (14., 3.); (7., 3.); (14., 2.); (14., 5.) ];
  T.print t;
  print_endline
    "E19 reading: the graph model never under-counts capacity (independent pairs\n\
     stay independent) but its slots lose SINR-feasibility as density grows —\n\
     the additive-interference gap the conflict-graph literature bounds.";
  print_newline ();
  Outcome.make ~measured:!min_over ~bound:1.
    ~detail:"min graph capacity / true capacity (must never under-count)"
    !ok

(* E20 — the remaining distributed protocol families + measurement. *)
let e20_protocol_suite () =
  let t = T.create ~title:"E20  Protocol suite [13,67,55] across spaces, and RSSI sampling [sec 2.2]"
      [ "space"; "bcast rounds"; "bcast done"; "color rounds"; "proper";
        "palette/(D+1)"; "domset rounds"; "dominating"; "leaders" ]
  in
  let ok = ref true in
  let run ?bcast_power name space ~radius =
    (* Noise bounds solo reception (default: decay <= 4*radius), so the
       broadcast is genuinely multi-hop rather than one lucky solo round;
       spaces whose diameter exceeds that reach pass an explicit power. *)
    let bc =
      Core.Distrib.Broadcast.run ?power:bcast_power ~noise:1. ~max_rounds:6000
        (Rng.create 1601) space ~source:0 ~radius
    in
    let col =
      Core.Distrib.Coloring.run ~max_rounds:6000 (Rng.create 1602) space ~radius
    in
    let dom =
      Core.Distrib.Dominating_set.run ~max_rounds:6000 (Rng.create 1603) space
        ~radius
    in
    let delta = Core.Distrib.Coloring.max_degree space ~radius in
    if
      not
        (bc.Core.Distrib.Broadcast.completed
        && col.Core.Distrib.Coloring.proper
        && dom.Core.Distrib.Dominating_set.dominating)
    then ok := false;
    T.add_row t
      [ T.S name; T.I bc.Core.Distrib.Broadcast.rounds;
        T.S (string_of_bool bc.Core.Distrib.Broadcast.completed);
        T.I col.Core.Distrib.Coloring.rounds;
        T.S (string_of_bool col.Core.Distrib.Coloring.proper);
        T.F2
          (float_of_int col.Core.Distrib.Coloring.palette
          /. float_of_int (delta + 1));
        T.I dom.Core.Distrib.Dominating_set.rounds;
        T.S (string_of_bool dom.Core.Distrib.Dominating_set.dominating);
        T.I (List.length dom.Core.Distrib.Dominating_set.leaders) ]
  in
  run "grid 5x5 alpha=3"
    (D.of_points ~alpha:3. (Core.Decay.Spaces.grid_points ~rows:5 ~cols:5 ~spacing:1.))
    ~radius:1.5;
  run "random 20 alpha=3"
    (D.of_points ~alpha:3.
       (Core.Decay.Spaces.random_points (Rng.create 1604) ~n:20 ~side:5.))
    ~radius:2.;
  run ~bcast_power:800. "star k=14" (Core.Decay.Spaces.star ~k:14 ~r:4.)
    ~radius:5.;
  run "uniform n=16" (Core.Decay.Spaces.uniform 16) ~radius:1.5;
  T.print t;
  (* Sampling estimator: error vs K. *)
  let st = T.create ~title:"E20b  RSSI sampling estimator under Rayleigh fading"
      [ "samples K"; "median err (dB)"; "p95 err (dB)" ]
  in
  let env = Core.Radio.Environment.empty ~side:20. in
  let nodes =
    Core.Radio.Node.of_points
      (Core.Decay.Spaces.random_points (Rng.create 1605) ~n:8 ~side:18.)
  in
  let cfg =
    { Core.Radio.Propagation.default with
      Core.Radio.Propagation.walls = false;
      fading = Core.Radio.Propagation.Rayleigh }
  in
  let truth =
    Core.Radio.Measure.decay_space ~seed:6
      ~config:{ cfg with Core.Radio.Propagation.fading = Core.Radio.Propagation.No_fading }
      env nodes
  in
  let prev = ref infinity in
  let last_med = ref infinity in
  List.iter
    (fun k ->
      let est =
        Core.Radio.Sampling.estimate_decay_space ~seed:6 ~config:cfg ~samples:k
          env nodes
      in
      let med, p95 = Core.Radio.Sampling.error_db ~truth ~estimate:est in
      if med > !prev +. 0.3 then ok := false;
      prev := med;
      last_med := med;
      T.add_row st [ T.I k; T.F2 med; T.F2 p95 ])
    [ 2; 8; 32; 128; 512 ];
  T.print st;
  Outcome.make ~measured:!last_med
    ~detail:"median RSSI estimator error (dB) at K = 512; protocols all pass"
    !ok
