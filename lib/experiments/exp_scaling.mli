(** Experiment E24: engineering-side scaling of the metricity computation —
    exact O(n^3) vs triple sampling vs node-subsampling on measured indoor
    spaces, with wall-clock cost.  Not a paper claim; the due diligence a
    release needs so users know which estimator to reach for. *)

val e24_metricity_scaling : unit -> Outcome.t
(** Both estimators stay within the exact value (lower bounds) and recover
    most of it at a fraction of the cost. *)
