(** Experiment E24: engineering-side scaling of the metricity computation —
    the exact O(n^3) kernel cross-validated against the stratified
    estimator tier ({!Core.Decay.Estimators}) on measured indoor spaces,
    then the estimator alone on an n = 50,000 oracle the exact kernel
    cannot touch.  Not a paper claim; the due diligence a release needs so
    users know which estimator to reach for and how far to trust its
    confidence intervals. *)

val e24_metricity_scaling : unit -> Outcome.t
(** Both estimators stay at or below the exact value (certified lower
    bounds), their confidence intervals contain it, and they recover most
    of it at a fraction of the cost; the 50k-node estimate completes in
    bounded memory. *)
