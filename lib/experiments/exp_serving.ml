module Ctx = Core.Decay.Ctx
module T = Core.Prelude.Table
module Obs = Core.Prelude.Obs
module P = Bg_serve.Protocol
module Server = Bg_serve.Server
module Store = Bg_serve.Store
module Chaos = Bg_serve.Chaos
module Client = Bg_serve.Client
module L = Bg_serve.Loadgen
module Slo = Bg_serve.Slo

(* E30 — resilient serving under injected faults: a seeded zipf workload
   driven through the chaos harness (dropped, torn and corrupted reply
   lines, plus a mid-batch crash) with a retrying client and a
   WAL-backed store.  The claims:

   - exactly one answer per request id, however many wire attempts the
     faults force;
   - the injected crash loses at most the in-flight batch: reopening the
     store recovers every journaled entry, and a warm re-drive recomputes
     nothing;
   - no corrupt payload survives into the durable answers — every cached
     result equals the direct computation, bit for bit.

   Everything flows from two integers (workload seed, chaos seed), so a
   failure replays exactly. *)

let rm_f p = try Sys.remove p with Sys_error _ -> ()

let with_temp_store f =
  let dir = Filename.temp_file "bg_e30" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "store.jsonl" in
  Fun.protect
    ~finally:(fun () ->
      rm_f path;
      rm_f (path ^ ".wal");
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f path)

let workload =
  { L.seed = 30; requests = 160; spaces = 20; nodes = 10; zipf_s = 1.1 }

let chaos_seed = 3003

let faulty_spec =
  {
    Chaos.none with
    Chaos.drop = 0.08;
    torn = 0.05;
    corrupt = 0.05;
    crash = Some (Chaos.Mid_batch, 4);
  }

let engine ?chaos ?store () =
  Server.create
    {
      Server.ctx = Ctx.make ~jobs:1 ~cache:false ();
      batch_size = 16;
      max_queue = 256;
      request_timeout_s = None;
      store;
      degrade = None;
      chaos;
      slo = None;
      telemetry = None;
      lineage = None;
    }

(* No deadline: the in-process driver detects lost replies at batch
   boundaries, not by clock.  The budget must outlast an ~18% per-attempt
   fault rate. *)
let client () =
  Client.create
    ~config:
      { Client.default_config with Client.deadline_s = None; max_retries = 10 }
    ~seed:77 ()

let answer_of eng r =
  match Server.process_batch eng [ (r, Obs.now_s ()) ] with
  | [ P.Done { result; cache; _ } ] -> Some (result, cache)
  | _ -> None

let e30_resilient_serving () =
  with_temp_store @@ fun path ->
  let reqs = L.generate workload in
  let t =
    T.create ~title:"E30  resilient serving: seeded chaos, crash, recovery"
      [ "phase"; "sent"; "answered"; "ok"; "retries"; "corrupt"; "note" ]
  in
  let row phase (r : L.report) note =
    T.add_row t
      [ T.S phase; T.I r.L.sent; T.I r.L.answered; T.I r.L.ok;
        T.I r.L.retries; T.I r.L.corrupt_lines; T.S note ]
  in
  (* Phase 1 — chaotic serve until the injected mid-batch crash.  The
     store is abandoned without flush or close: a power cut, so only
     group-committed (fsync'd) journal entries survive. *)
  let chaos1 = Chaos.create ~action:Chaos.Raise ~seed:chaos_seed faulty_spec in
  let store1 = Store.open_ ~path ~flush_every:1_000_000 () in
  let crashed =
    match
      L.drive_inproc ~window:16 ~client:(client ())
        (engine ~chaos:chaos1 ~store:store1 ())
        reqs
    with
    | (_ : L.report) -> false
    | exception Chaos.Injected_crash _ -> true
  in
  T.add_row t
    [ T.S "crash"; T.S "-"; T.S "-"; T.S "-"; T.S "-"; T.S "-";
      T.S (if crashed then "injected mid-batch crash fired" else "NO CRASH") ];
  (* Phase 2 — reopen (journal replay) and re-drive the whole trace under
     the same wire faults, crash disarmed.  Retries must get every id
     answered exactly once. *)
  let store2 = Store.open_ ~path ~flush_every:1_000_000 () in
  let recovered = Store.wal_recovered store2 in
  let torn = Store.wal_torn store2 in
  let chaos2 =
    Chaos.create ~action:Chaos.Raise ~seed:(chaos_seed + 1)
      { faulty_spec with Chaos.crash = None }
  in
  let after =
    L.drive_inproc ~window:16 ~client:(client ())
      (engine ~chaos:chaos2 ~store:store2 ())
      reqs
  in
  Store.close store2;
  row "chaotic re-drive" after
    (Printf.sprintf "WAL: %d recovered, %d torn" recovered torn);
  (* Phase 3 — warm, fault-free re-drive: everything must come from the
     recovered cache. *)
  let store3 = Store.open_ ~path () in
  let warm = L.drive_inproc ~window:16 (engine ~store:store3 ()) reqs in
  row "warm re-drive" warm
    (Printf.sprintf "hit rate %.3f, %d misses" (L.hit_rate warm) warm.L.misses);
  (* Ground truth — every distinct cached answer equals the direct
     computation: chaos mangled wires, never the durable results. *)
  let distinct =
    List.rev
      (List.fold_left
         (fun acc r ->
           let key =
             match r.P.space with
             | Some (P.Inline (name, _)) -> name ^ "/" ^ P.op_key r.P.op
             | _ -> assert false
           in
           if List.mem_assoc key acc then acc else (key, r) :: acc)
         [] reqs)
  in
  let warm_eng = engine ~store:store3 () in
  let clean_eng = engine () in
  let mismatches, uncached =
    List.fold_left
      (fun (bad, cold) (_, r) ->
        match (answer_of warm_eng r, answer_of clean_eng r) with
        | Some (cached, P.Hit), Some (direct, _) ->
            ((if cached = direct then bad else bad + 1), cold)
        | Some _, Some _ -> (bad, cold + 1)
        | _ -> (bad + 1, cold))
      (0, 0) distinct
  in
  Store.close store3;
  T.add_row t
    [ T.S "ground truth"; T.I (List.length distinct); T.S "-"; T.S "-";
      T.S "-"; T.S "-";
      T.S (Printf.sprintf "%d mismatches, %d uncached" mismatches uncached) ];
  (* SLO verdict over the chaotic re-drive.  The error objective is
     load-bearing (chaos may slow requests with retries but must not
     fail them); the latency burn is recorded for the table but kept out
     of the pass criterion — wall-clock on a loaded CI box is not a
     claim of the paper. *)
  let slo_statuses =
    match Slo.parse_spec "err<=1%,p99<=1.0" with
    | Ok spec -> Slo.eval_samples spec after.L.slo_samples
    | Error m -> invalid_arg m
  in
  let slo_note =
    String.concat ", "
      (List.map
         (fun st ->
           Printf.sprintf "%s burn %.2f %s"
             (Slo.objective_name st.Slo.objective)
             st.Slo.window_burn
             (if st.Slo.healthy then "ok" else "VIOLATED"))
         slo_statuses)
  in
  let err_healthy =
    List.for_all
      (fun st ->
        match st.Slo.objective with
        | Slo.Error_rate _ -> st.Slo.healthy
        | Slo.Latency _ -> true)
      slo_statuses
  in
  T.add_row t
    [ T.S "slo verdict"; T.I after.L.sent; T.S "-"; T.S "-"; T.S "-"; T.S "-";
      T.S slo_note ];
  T.print t;
  let exactly_once =
    after.L.answered = after.L.sent && after.L.ok = after.L.sent
    && after.L.gave_up = 0
  in
  let pass =
    crashed && recovered > 0 && exactly_once && warm.L.misses = 0
    && L.hit_rate warm >= 0.5
    && mismatches = 0 && uncached = 0 && err_healthy
  in
  Outcome.make ~measured:(L.hit_rate warm) ~bound:0.5
    ~detail:
      (Printf.sprintf
         "crash=%b wal_recovered=%d exactly_once=%b retries=%d corrupt=%d \
          warm_misses=%d mismatches=%d slo=[%s]"
         crashed recovered exactly_once after.L.retries after.L.corrupt_lines
         warm.L.misses mismatches slo_note)
    pass
