type outcome = Outcome.t = {
  pass : bool;
  measured : float option;
  bound : float option;
  detail : string;
}

type entry = { id : string; claim : string; run : unit -> outcome }

let all =
  [
    { id = "E1"; claim = "Prop. 1: theory transfer via induced quasi-metrics";
      run = Exp_model.e1_theory_transfer };
    { id = "E2"; claim = "Thm 2: fading parameter bound on doubling spaces";
      run = Exp_model.e2_fading_bound };
    { id = "E3"; claim = "Sec. 3.4: star space beyond fading spaces";
      run = Exp_model.e3_star_example };
    { id = "E4"; claim = "Thm 3: 2^zeta-hardness construction (capacity = MIS)";
      run = Exp_capacity.e4_thm3_hardness };
    { id = "E5"; claim = "Lemmas B.1/B.3/4.1: sparsification partitions";
      run = Exp_capacity.e5_sparsification };
    { id = "E6"; claim = "Thm 4: amicability polynomial in zeta";
      run = Exp_capacity.e6_amicability };
    { id = "E7"; claim = "Thm 5: Alg. 1 capacity approximation, alpha sweep";
      run = Exp_capacity.e7_capacity_approximation };
    { id = "E8"; claim = "Thm 6: 2^phi-hardness in bounded-growth spaces";
      run = Exp_capacity.e8_thm6_hardness };
    { id = "E9"; claim = "Sec. 4.2: zeta vs phi relationships";
      run = Exp_model.e9_zeta_vs_phi };
    { id = "E10"; claim = "Welzl construction: doubling 1, independence n+1";
      run = Exp_model.e10_welzl };
    { id = "E11"; claim = "Sec. 4.1: guards and kissing numbers on the plane";
      run = Exp_model.e11_guards };
    { id = "E12"; claim = "Sec. 3.3: distributed algorithms vs gamma";
      run = Exp_system.e12_distributed };
    { id = "E13"; claim = "Sec. 2.1: SINR thresholding of packet reception";
      run = Exp_system.e13_thresholding };
    { id = "E14"; claim = "Sec. 1: decay uncorrelated with distance, yet measurable";
      run = Exp_system.e14_measurability };
    { id = "E15"; claim = "extension: power-control regimes [58,27]";
      run = Exp_extensions.e15_power_regimes };
    { id = "E16"; claim = "extension: dynamic packet scheduling [2,3,44]";
      run = Exp_extensions.e16_dynamic_stability };
    { id = "E17"; claim = "extension: Rayleigh-fading reduction [10]";
      run = Exp_extensions.e17_rayleigh };
    { id = "E18"; claim = "extension: spectrum auctions [38,37]";
      run = Exp_applications.e18_spectrum_auction };
    { id = "E19"; claim = "extension: conflict-graph utility [61,60]";
      run = Exp_applications.e19_conflict_graphs };
    { id = "E20"; claim = "extension: broadcast/coloring/dominating-set + sampling";
      run = Exp_applications.e20_protocol_suite };
    { id = "E21"; claim = "extension: online capacity maximization [15]";
      run = Exp_online.e21_online_capacity };
    { id = "E22"; claim = "extension: distributed contention resolution [45]";
      run = Exp_online.e22_contention_resolution };
    { id = "E23"; claim = "extension: flexible data rates [43] + cognitive radio [33]";
      run = Exp_rates.e23_rates_and_cognitive };
    { id = "E24"; claim = "engineering: metricity estimators at scale";
      run = Exp_scaling.e24_metricity_scaling };
    { id = "E25"; claim = "extension: flow-based throughput [8,62]";
      run = Exp_flow.e25_flow_throughput };
    { id = "E26"; claim = "negative control: SINR diagrams [4] do not transfer";
      run = Exp_flow.e26_sinr_diagram_negative };
    { id = "E27"; claim = "extension: dimension parameters off the plane (R^3)";
      run = Exp_dimension3.e27_ambient_dimension };
    { id = "E28"; claim = "ablation: Algorithm 1's design choices";
      run = Exp_ablation.e28_alg1_ablation };
    { id = "E29"; claim = "robustness: corrupted measurements repair-or-reject, never crash";
      run = Exp_robustness.e29_fault_injection };
    { id = "E30"; claim = "resilience: chaos-injected serving answers exactly once, recovers the journal";
      run = Exp_serving.e30_resilient_serving };
    { id = "E31"; claim = "churn: incremental analysis is bit-exact under mobility; schedules outlive drift";
      run = Exp_churn.e31_churn_scheduling };
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> e.id = id) all

let run_all () =
  let module Obs = Core.Prelude.Obs in
  List.map
    (fun e ->
      Printf.printf "--- %s: %s ---\n%!" e.id e.claim;
      let o =
        (* Same span shape as Isolate.run_entry, so a trace of the bench
           harness (which runs entries directly) tells the same story. *)
        Obs.with_span ~attrs:[ ("id", Obs.S e.id) ] "experiment" (fun () ->
            let o = e.run () in
            Obs.add_span_attr "verdict"
              (Obs.S (if o.pass then "PASS" else "FAIL"));
            Obs.add_span_attr "pass" (Obs.B o.pass);
            o)
      in
      (e.id, o))
    all

let all_pass results = List.for_all (fun (_, o) -> o.pass) results

let print_verdicts results =
  let t =
    Bg_prelude.Table.create ~title:"experiment verdicts"
      [ "id"; "verdict"; "measured"; "bound"; "detail" ]
  in
  List.iter
    (fun (id, o) ->
      Bg_prelude.Table.add_row t
        [
          Bg_prelude.Table.S id;
          Bg_prelude.Table.S (if o.pass then "PASS" else "FAIL");
          Bg_prelude.Table.S (Outcome.float_cell o.measured);
          Bg_prelude.Table.S (Outcome.float_cell o.bound);
          Bg_prelude.Table.S o.detail;
        ])
    results;
  Bg_prelude.Table.print t
