(** Experiments E15-E17: the "carries over" families Proposition 1 names
    beyond plain capacity — power-control regimes [58, 27], dynamic packet
    scheduling [2, 3, 44], and the Rayleigh-fading reduction [10].  These
    are ablations of the reproduction's extension modules; each prints its
    tables and returns an {!Outcome.t} recording whether the expected qualitative relationships
    held. *)

val e15_power_regimes : unit -> Outcome.t
(** Uniform vs mean (square-root) vs linear power vs full power control as
    link-length dispersion grows: oblivious non-uniform power wins exactly
    where theory says it should. *)

val e16_dynamic_stability : unit -> Outcome.t
(** Longest-queue-first dynamic scheduling: stable below the capacity
    region, diverging above, with random access strictly weaker. *)

val e17_rayleigh : unit -> Outcome.t
(** The closed-form Rayleigh success probability matches Monte-Carlo, and
    threshold-model capacity tracks expected fading throughput (the [10]
    simulation argument, empirically). *)
