(** E29 — fault-injection robustness.

    Sweeps every {!Core.Decay.Corrupt} fault mode (link dropout,
    noise-floor censoring, outlier spikes, NaN holes) across every
    {!Core.Decay.Validate.policy} on two base spaces, and asserts the
    pipeline's fault-tolerance contract: each scenario either
    repairs-and-reports or rejects with a cell-addressed diagnosis —
    never crashes, never emits NaN parameters. *)

val e29_fault_injection : unit -> Outcome.t
