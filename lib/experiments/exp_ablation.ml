module I = Core.Sinr.Instance
module T = Core.Prelude.Table
module Rng = Core.Prelude.Rng
module Pw = Core.Sinr.Power
module Stats = Core.Prelude.Stats

let e28_alg1_ablation () =
  let t = T.create ~title:"E28  Ablating Algorithm 1 (alpha = 4, 16 links, 6 seeds; OPT via B&B)"
      [ "variant"; "mean |S|"; "feasible"; "mean OPT/|S|"; "separated" ]
  in
  let seeds = [ 2301; 2302; 2303; 2304; 2305; 2306 ] in
  let instances =
    List.map
      (fun seed ->
        I.random_planar (Rng.create seed) ~n_links:16 ~side:13. ~alpha:4.
          ~lmin:1. ~lmax:2.)
      seeds
  in
  let opts =
    List.map (fun i -> List.length (Core.Capacity.Exact.capacity i)) instances
  in
  let results = ref [] in
  let variant name run =
    let sizes = ref [] and feas = ref 0 and ratios = ref [] and seps = ref 0 in
    List.iter2
      (fun inst opt ->
        let s = run inst in
        sizes := float_of_int (List.length s) :: !sizes;
        if Core.Sinr.Feasibility.is_feasible inst (Pw.uniform 1.) s then
          incr feas;
        if
          Core.Sinr.Separation.is_separated_set inst
            ~eta:(inst.I.zeta /. 2.) s
        then incr seps;
        ratios :=
          (float_of_int opt /. float_of_int (max 1 (List.length s))) :: !ratios)
      instances opts;
    let mean l = Stats.mean (Array.of_list l) in
    results := (name, !feas) :: !results;
    T.add_row t
      [ T.S name; T.F2 (mean !sizes);
        T.S (Printf.sprintf "%d/%d" !feas (List.length seeds));
        T.F2 (mean !ratios);
        T.S (Printf.sprintf "%d/%d" !seps (List.length seeds)) ]
  in
  variant "paper (eta=z/2, headroom=1/2, filter)" (fun i ->
      Core.Capacity.Alg1.run_configured i);
  variant "no separation test" (fun i ->
      Core.Capacity.Alg1.run_configured ~eta:0. i);
  variant "no headroom test" (fun i ->
      Core.Capacity.Alg1.run_configured ~headroom:infinity i);
  variant "no final filter" (fun i ->
      Core.Capacity.Alg1.run_configured ~final_filter:false i);
  variant "tighter separation (eta=zeta)" (fun i ->
      Core.Capacity.Alg1.run_configured ~eta:i.I.zeta i);
  variant "looser separation (eta=zeta/4)" (fun i ->
      Core.Capacity.Alg1.run_configured ~eta:(i.I.zeta /. 4.) i);
  variant "neither test (admit everything)" (fun i ->
      Core.Capacity.Alg1.run_configured ~eta:0. ~headroom:infinity
        ~final_filter:false i);
  T.print t;
  print_endline
    "E28 reading: either admission test alone already guarantees feasibility on\n\
     these instances (they are redundant safety-wise) — dropping BOTH admits\n\
     infeasible sets.  The separation test is the one the zeta^O(1) analysis\n\
     consumes, and it costs real cardinality (tighten it and the ratio doubles);\n\
     the affectance headroom is what generalizes to spaces where separation is\n\
     cheap; the final filter is a near-free safety net.";
  print_newline ();
  (* Claim checks: the paper variant is always feasible and separated;
     removing both admission tests must break feasibility somewhere; and
     tightening separation must cost cardinality. *)
  let feas_of name = List.assoc name !results in
  let neither = feas_of "neither test (admit everything)" in
  Outcome.make
    ~measured:(float_of_int neither)
    ~bound:(float_of_int (List.length seeds))
    ~detail:"feasible count with both tests removed must fall below #seeds"
    (feas_of "paper (eta=z/2, headroom=1/2, filter)" = List.length seeds
    && neither < List.length seeds)