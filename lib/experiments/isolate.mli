(** Isolated execution of registry experiments.

    [bg experiment E1 E2 ...] must always complete: one raising or hung
    claim is a data point ([Crashed]/[Timed_out]), not a reason to lose
    the rest of the run.  Each entry executes inside a wrapper that
    captures exceptions (with optional retry-and-backoff) and enforces a
    cooperative wall-clock budget via
    {!Core.Prelude.Parallel.with_deadline}; the aggregate exit code
    reflects every outcome faithfully. *)

type exn_info = { exn : string; backtrace : string }

type status =
  | Finished of Outcome.t  (** ran to completion (pass or fail) *)
  | Crashed of exn_info  (** raised on every attempt *)
  | Timed_out of float  (** exceeded the wall-clock budget (seconds) *)

type result = {
  id : string;
  claim : string;
  status : status;
  attempts : int;  (** 1 + retries actually consumed *)
}

val run_entry :
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  Registry.entry ->
  result
(** Run one experiment isolated.  [timeout_s] bounds wall-clock time
    cooperatively (the triple sweeps poll the deadline at chunk
    boundaries); a crash is retried up to [retries] times with
    exponential backoff starting at [backoff_s] (default 0.05s).
    Never raises for an experiment failure of any kind. *)

val run_entries :
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  Registry.entry list ->
  result list
(** Run each entry in order (headers and crash/timeout notices to
    stdout), always reaching the end of the list. *)

val passed : result -> bool
(** [Finished] with a passing outcome. *)

val all_ok : result list -> bool

val exit_code : result list -> int
(** [0] iff every result passed, else [1] — crashes and timeouts count as
    failures. *)

val verdict : result -> string
(** ["PASS" | "FAIL" | "CRASH" | "TIMEOUT"]. *)

val print_results : result list -> unit
(** The measured-vs-bound verdict table, extended with crash/timeout
    rows. *)
