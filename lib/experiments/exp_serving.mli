(** E30 — resilient serving under injected faults.

    Drives a seeded zipf workload through the {!Bg_serve} chaos harness:
    dropped, torn and corrupted response lines plus a mid-batch crash,
    against a WAL-backed {!Bg_serve.Store} and a retrying
    {!Bg_serve.Client} policy.  Asserts exactly one answer per request
    id, journal recovery across the crash (warm re-drive recomputes
    nothing, hit rate at least 0.5), and that every durable answer
    equals the direct computation — chaos never corrupts results, only
    wires.  The whole run replays from two integers (workload seed,
    chaos seed). *)

val e30_resilient_serving : unit -> Outcome.t
