(** Radio-environment adapters for {!Bg_decay.Evolve}.

    [Evolve] lives below this library, so it takes its large-scale decay
    as a plain function of two positions.  This module supplies that
    function from the radio substrate: the deterministic part of a
    {!Propagation} link budget (path-loss model plus wall penetration
    through an {!Environment}), converted to a decay with
    {!Propagation.loss_to_decay}.  Shadowing and fast fading are {e not}
    included here — [Evolve] owns those, time-correlated, on top.

    The returned function is pure and deterministic, so cells of
    stationary links stay bit-identical across steps — exactly the
    invariant {!Bg_decay.Incremental} requires. *)

val base_decay :
  ?config:Propagation.config -> Environment.t ->
  Bg_geom.Point.t -> Bg_geom.Point.t -> float
(** [base_decay env p q] is
    [loss_to_decay (large_scale_loss_db config env p q)].  [config]
    defaults to {!Propagation.default} with shadowing and fading stripped
    (they would be double-counted against [Evolve]'s own fields; the
    deterministic loss ignores those fields anyway — stripping just makes
    the intent explicit). *)

val evolve :
  ?config:Propagation.config ->
  ?name:string ->
  seed:int ->
  Environment.t ->
  Bg_decay.Evolve.config ->
  Bg_decay.Evolve.t
(** Convenience: {!Bg_decay.Evolve.create} over {!base_decay} of the
    environment.  The evolve config's [side] should match
    [Environment.side] so waypoints stay inside the floor plan (checked:
    @raise Invalid_argument on a mismatch). *)
