(* Adapters from the radio substrate to Bg_decay.Evolve — see churn.mli. *)

let strip config =
  {
    config with
    Propagation.shadowing_sigma_db = 0.;
    fading = Propagation.No_fading;
  }

let base_decay ?(config = Propagation.default) env =
  let config = strip config in
  fun p q ->
    Propagation.loss_to_decay (Propagation.large_scale_loss_db config env p q)

let evolve ?config ?name ~seed env (cfg : Bg_decay.Evolve.config) =
  if cfg.Bg_decay.Evolve.side > Environment.side env +. 1e-9 then
    invalid_arg
      (Printf.sprintf
         "Churn.evolve: arena side %g exceeds environment side %g"
         cfg.Bg_decay.Evolve.side (Environment.side env));
  Bg_decay.Evolve.create ~base:(base_decay ?config env) ?name ~seed cfg
